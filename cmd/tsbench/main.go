// Command tsbench regenerates the figures of the paper's evaluation
// (Sec. 5). Each figure prints as a table of the same series the paper
// plots; see EXPERIMENTS.md for the recorded paper-vs-measured comparison.
//
// Usage:
//
//	tsbench -fig 5            # Query 1 time vs number of sequences
//	tsbench -fig 6            # Query 1 time vs number of transformations
//	tsbench -fig 7            # Query 2 (join) time vs number of transformations
//	tsbench -fig 8            # transformations-per-MBR sweep, MV(6..29)
//	tsbench -fig 9            # same with inverted transformations added
//	tsbench -fig 3 | -fig 4   # MBR decomposition illustrations
//	tsbench -fig all -queries 100
//	tsbench -fig none -throughput           # concurrent queries/sec sweep
//	tsbench -fig none -verify-sweep -backend=disk  # naive vs pipeline I/O A/B
//	tsbench -fig 5 -json results.json       # machine-readable results
//
// -throughput runs the batch executor over the Fig. 5 workload at worker
// counts 1, 4 and GOMAXPROCS (or -workers a,b,c) and reports queries per
// second. -verify-sweep runs the same MT-index workload through the
// naive record-at-a-time verifier and the I/O-aware pipeline
// (lower-bound skip, page-ordered batched fetch, early abandoning) on
// the chosen -backend (mem, or disk for a temp page file) and reports
// page reads, readahead, and verification effort per query. -json
// writes every measured point, wrapped in an envelope of run metadata
// (schema version, GOMAXPROCS, NumCPU, page size, git revision), to a
// file ("-" for stdout) — the format the repo's BENCH_*.json trajectory
// files record.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"

	"tsq/internal/bench"
	"tsq/internal/obs"
	"tsq/internal/plot"
	"tsq/internal/storage"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "figure to regenerate: 3, 4, 5, 6, 7, 8, 9, all or none")
		queries    = flag.Int("queries", 20, "random query repetitions per point (paper: 100)")
		seed       = flag.Int64("seed", 1999, "random seed")
		stocks     = flag.Int("stocks", 1068, "size of the synthetic stock data set")
		length     = flag.Int("length", 128, "series length")
		paperRect  = flag.Bool("paper-rect", false, "use the paper's plain eps-box query rectangle")
		outDir     = flag.String("out", "", "directory to also write figN.svg and figN.csv files into")
		throughput = flag.Bool("throughput", false, "run the concurrent-throughput sweep")
		tpCount    = flag.Int("tpcount", 8000, "throughput sweep: dataset size")
		tpQueries  = flag.Int("tpqueries", 256, "throughput sweep: queries per batch")
		workers    = flag.String("workers", "", "throughput sweep: comma-separated worker counts (default 1,4,GOMAXPROCS)")
		jsonOut    = flag.String("json", "", "write machine-readable results to this file (- for stdout)")
		verify     = flag.Bool("verify-sweep", false, "run the naive-vs-pipeline verification A/B sweep")
		capSweep   = flag.Bool("capture-sweep", false, "run the workload-capture overhead and replay-determinism sweep")
		shardSweep = flag.String("shards", "", "run the shard sweep at these comma-separated shard counts, e.g. -shards 1,2,4")
		backend    = flag.String("backend", "mem", "verify/capture/shard sweep backends, comma-separated: mem, or disk for a temp page file")
		version    = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("tsbench", obs.ReadBuildSection())
		return
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "tsbench: %v\n", err)
			os.Exit(1)
		}
	}
	cfg := bench.Config{
		Queries:        *queries,
		Seed:           *seed,
		StockCount:     *stocks,
		Length:         *length,
		PaperQueryRect: *paperRect,
	}
	var results []benchResult
	if err := run(*fig, cfg, *outDir, &results); err != nil {
		fmt.Fprintf(os.Stderr, "tsbench: %v\n", err)
		os.Exit(1)
	}
	if *throughput {
		wc, err := parseWorkers(*workers)
		if err == nil {
			err = runThroughput(cfg, *tpCount, *tpQueries, wc, &results)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *verify {
		for _, be := range strings.Split(*backend, ",") {
			if be = strings.TrimSpace(be); be == "" {
				continue
			}
			if err := runVerifySweep(cfg, be, &results); err != nil {
				fmt.Fprintf(os.Stderr, "tsbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if *capSweep {
		for _, be := range strings.Split(*backend, ",") {
			if be = strings.TrimSpace(be); be == "" {
				continue
			}
			if err := runCaptureSweep(cfg, be, &results); err != nil {
				fmt.Fprintf(os.Stderr, "tsbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if *shardSweep != "" {
		counts, err := parseWorkers(*shardSweep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsbench: bad -shards: %v\n", err)
			os.Exit(1)
		}
		for _, be := range strings.Split(*backend, ",") {
			if be = strings.TrimSpace(be); be == "" {
				continue
			}
			if err := runShardSweep(cfg, be, counts, &results); err != nil {
				fmt.Fprintf(os.Stderr, "tsbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, results); err != nil {
			fmt.Fprintf(os.Stderr, "tsbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// benchResult is one measured point in the machine-readable output.
type benchResult struct {
	Name          string  `json:"name"`
	NsPerOp       float64 `json:"ns_per_op,omitempty"`
	DiskReads     float64 `json:"disk_reads,omitempty"`
	QueriesPerSec float64 `json:"queries_per_sec,omitempty"`
	// SingleCPU marks the workers=1 throughput row: it is the serial
	// parity baseline, not a scaling claim.
	SingleCPU bool `json:"single_cpu,omitempty"`
	// Verify-sweep rows: per-query lower-bound skips, split by the
	// cascade tier that decided them (tier 0 magnitude-gap, tier 1
	// exact first coefficient, tier 2 full DFT prefix; the flat A/B
	// mode books everything as tier 2), and the per-candidate costs —
	// ns_per_candidate over the whole verification phase,
	// lb_ns_per_candidate over the skip-or-fetch decision alone.
	SkippedLB        float64 `json:"skipped_lb,omitempty"`
	SkippedLB0       float64 `json:"skipped_lb_t0,omitempty"`
	SkippedLB1       float64 `json:"skipped_lb_t1,omitempty"`
	SkippedLB2       float64 `json:"skipped_lb_t2,omitempty"`
	NsPerCandidate   float64 `json:"ns_per_candidate,omitempty"`
	LBNsPerCandidate float64 `json:"lb_ns_per_candidate,omitempty"`
	// Resource attribution (schema 3): process heap-allocation deltas
	// per query, for the sweeps that measure them (throughput, verify).
	AllocBytesPerOp float64 `json:"alloc_bytes_per_op,omitempty"`
	MallocsPerOp    float64 `json:"mallocs_per_op,omitempty"`
	// Capture/replay rows (schema 4): how many captured queries the
	// replay re-executed and how many answer digests diverged (a
	// regression if nonzero — the engine's answer sets are deterministic
	// and option-independent).
	Replayed   int64 `json:"replayed,omitempty"`
	Mismatches int64 `json:"mismatches,omitempty"`
	// Shard-sweep rows (schema 5): the shard count and the wall time of
	// partitioning + building all shard trees (and, on disk, committing
	// shard files + the manifest).
	Shards  int     `json:"shards,omitempty"`
	BuildNs float64 `json:"build_ns,omitempty"`
}

// benchMeta records the run environment so BENCH_*.json files are
// comparable across machines and toolchains.
type benchMeta struct {
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	PageSize    int    `json:"page_size"`
	GitRevision string `json:"git_revision"`
	// Resources is the run's cumulative process resource footprint
	// (heap bytes/objects allocated, GC cycles and pause) sampled when
	// the envelope is written — a coarse "what did this run cost"
	// alongside the per-point measurements.
	Resources obs.Resources `json:"resources"`
}

// benchFile is the machine-readable output envelope; the BENCH_*.json
// trajectory files record one of these. Schema 1 was a bare result
// array with no run metadata; schema 2 added the meta envelope; schema
// 3 added resource attribution — per-query allocation fields on the
// throughput and verify-sweep rows and the run's resource footprint in
// meta; schema 4 added the capture-sweep rows (journal overhead on/off,
// replay determinism with replayed/mismatch counts); schema 5 adds the
// shard-sweep rows (shards, build_ns).
type benchFile struct {
	SchemaVersion int           `json:"schema_version"`
	Meta          benchMeta     `json:"meta"`
	Results       []benchResult `json:"results"`
}

// benchSchemaVersion is the current benchFile schema.
const benchSchemaVersion = 5

// collectMeta captures the run environment. The git revision comes from
// the build info's VCS stamp, falling back to `git rev-parse HEAD`;
// "unknown" when neither is available (go run outside a repo, no git
// binary) — degraded metadata must never fail a benchmark run.
func collectMeta() benchMeta {
	return benchMeta{
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		PageSize:    storage.DefaultPageSize,
		GitRevision: gitRevision(),
		Resources:   obs.ReadResources(),
	}
}

// gitRevision resolves the source revision: the build info VCS stamp
// when the binary was built from a repo, else `git rev-parse HEAD` in
// the working directory, else "unknown". All failure modes (no build
// info, no git binary, not a repository) degrade silently.
func gitRevision() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if rev := strings.TrimSpace(string(out)); err == nil && rev != "" {
		return rev
	}
	return "unknown"
}

// parseWorkers parses "-workers 1,4,16"; empty means the default sweep.
func parseWorkers(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -workers element %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// runThroughput runs the concurrent-throughput sweep and prints (and
// records) queries/sec per worker count.
func runThroughput(cfg bench.Config, count, queries int, workerCounts []int, results *[]benchResult) error {
	fmt.Printf("=== Concurrent throughput: %d MT-index queries, %d sequences (Fig. 5 workload) ===\n", queries, count)
	rows, err := bench.Throughput(cfg, count, queries, workerCounts)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %14s %14s %14s %14s\n", "workers", "queries/sec", "sec/query", "disk/query", "KiB/query")
	for _, r := range rows {
		note := ""
		if r.Workers == 1 {
			note = "  (single-CPU parity baseline)"
		}
		fmt.Printf("%10d %14.1f %14.6f %14.1f %14.1f%s\n",
			r.Workers, r.QueriesPerSec, r.SecPerQuery, r.DiskPerQuery, r.AllocPerQuery/1024, note)
		*results = append(*results, benchResult{
			Name:            fmt.Sprintf("throughput/workers=%d", r.Workers),
			NsPerOp:         r.SecPerQuery * 1e9,
			DiskReads:       r.DiskPerQuery,
			QueriesPerSec:   r.QueriesPerSec,
			SingleCPU:       r.Workers == 1,
			AllocBytesPerOp: r.AllocPerQuery,
			MallocsPerOp:    r.MallocsPerQuery,
		})
	}
	fmt.Println()
	return nil
}

// runVerifySweep runs the naive / flat / pipeline verification A/B on
// the chosen backend and prints (and records) I/O and effort per query,
// including the per-tier skip counters of the lower-bound cascade and
// the per-candidate cost of the verification phase and of the
// lower-bound decision alone.
func runVerifySweep(cfg bench.Config, backend string, results *[]benchResult) error {
	fmt.Printf("=== Verification A/B: MT-index, MV(6..29), 8 per MBR, backend=%s ===\n", backend)
	rows, err := bench.VerifySweep(cfg, backend)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %12s %11s %10s %8s %8s %8s %10s %10s %11s %11s\n",
		"mode", "sec/query", "candidates", "skipped lb", "t0", "t1", "t2", "ns/cand", "lb ns/cand", "abandoned", "pages read")
	for _, r := range rows {
		fmt.Printf("%10s %12.6f %11.1f %10.1f %8.1f %8.1f %8.1f %10.1f %10.1f %11.1f %11.1f\n",
			r.Mode, r.SecPerQuery, r.Candidates, r.SkippedLB, r.SkippedLB0, r.SkippedLB1, r.SkippedLB2,
			r.NsPerCandidate, r.LBNsPerCandidate, r.Abandoned, r.PagesRead)
		*results = append(*results, benchResult{
			Name:             fmt.Sprintf("verify/%s/%s", r.Backend, r.Mode),
			NsPerOp:          r.SecPerQuery * 1e9,
			DiskReads:        r.PagesRead,
			SkippedLB:        r.SkippedLB,
			SkippedLB0:       r.SkippedLB0,
			SkippedLB1:       r.SkippedLB1,
			SkippedLB2:       r.SkippedLB2,
			NsPerCandidate:   r.NsPerCandidate,
			LBNsPerCandidate: r.LBNsPerCandidate,
			AllocBytesPerOp:  r.AllocPerQuery,
			MallocsPerOp:     r.MallocsPerQuery,
		})
	}
	fmt.Println()
	return nil
}

// runCaptureSweep measures the workload journal's per-query overhead
// (capture off vs on) and replays the captured workload verbatim and
// under the FlatLB override, recording replayed/mismatch counts and the
// tier-skip shift.
func runCaptureSweep(cfg bench.Config, backend string, results *[]benchResult) error {
	fmt.Printf("=== Workload capture: MT-index, MV(6..29), 8 per MBR, backend=%s ===\n", backend)
	rows, err := bench.CaptureSweep(cfg, backend)
	if err != nil {
		return err
	}
	fmt.Printf("%18s %12s %12s %10s %10s %10s %8s %8s\n",
		"arm", "sec/query", "B/query", "mallocs/q", "replayed", "mismatch", "lb t0/q", "lb t2/q")
	for _, r := range rows {
		fmt.Printf("%18s %12.6f %12.1f %10.1f %10d %10d %8.1f %8.1f\n",
			r.Name, r.SecPerQuery, r.AllocPerQuery, r.MallocsPerQuery,
			r.Replayed, r.Mismatches, r.SkippedLB0, r.SkippedLB2)
		*results = append(*results, benchResult{
			Name:            fmt.Sprintf("%s/%s", r.Name, r.Backend),
			NsPerOp:         r.SecPerQuery * 1e9,
			AllocBytesPerOp: r.AllocPerQuery,
			MallocsPerOp:    r.MallocsPerQuery,
			Replayed:        r.Replayed,
			Mismatches:      r.Mismatches,
			SkippedLB0:      r.SkippedLB0,
			SkippedLB2:      r.SkippedLB2,
		})
	}
	fmt.Println()
	return nil
}

// runShardSweep builds the dataset at each shard count and prints (and
// records) build time and per-query effort of the scatter-gather path.
// The shards=1 row is the serial parity baseline (the passthrough
// engine), marked single_cpu like the workers=1 throughput row.
func runShardSweep(cfg bench.Config, backend string, counts []int, results *[]benchResult) error {
	fmt.Printf("=== Shard sweep: MT-index, MV(6..29), 8 per MBR, backend=%s ===\n", backend)
	rows, err := bench.ShardSweep(cfg, backend, counts)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %12s %12s %14s %10s\n", "shards", "build(s)", "sec/query", "pages/query", "avg out")
	for _, r := range rows {
		note := ""
		if r.Shards == 1 {
			note = "  (single-tree parity baseline)"
		}
		fmt.Printf("%10d %12.4f %12.6f %14.1f %10.1f%s\n",
			r.Shards, r.BuildSec, r.SecPerQuery, r.PagesPerQuery, r.AvgOutput, note)
		*results = append(*results, benchResult{
			Name:      fmt.Sprintf("shards/%s/n=%d", r.Backend, r.Shards),
			NsPerOp:   r.SecPerQuery * 1e9,
			DiskReads: r.PagesPerQuery,
			SingleCPU: r.Shards == 1,
			Shards:    r.Shards,
			BuildNs:   r.BuildSec * 1e9,
		})
	}
	fmt.Println()
	return nil
}

// writeJSON writes the collected results wrapped in the schema-2
// envelope: run metadata first, then the result array.
func writeJSON(path string, results []benchResult) error {
	if results == nil {
		results = []benchResult{} // figures with no measured rows: emit [], not null
	}
	out := benchFile{
		SchemaVersion: benchSchemaVersion,
		Meta:          collectMeta(),
		Results:       results,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// recordRangeRows converts a Fig. 5/6-style sweep into result objects.
func recordRangeRows(results *[]benchResult, figName, xName string, rows []bench.RangeRow) {
	for _, r := range rows {
		prefix := fmt.Sprintf("%s/%s=%d", figName, xName, r.X)
		*results = append(*results,
			benchResult{Name: prefix + "/seqscan", NsPerOp: r.SeqScanSec * 1e9},
			benchResult{Name: prefix + "/st-index", NsPerOp: r.STSec * 1e9, DiskReads: r.STDiskAccesses},
			benchResult{Name: prefix + "/mt-index", NsPerOp: r.MTSec * 1e9, DiskReads: r.MTDiskAccesses},
		)
	}
}

func run(fig string, cfg bench.Config, outDir string, results *[]benchResult) error {
	all := fig == "all"
	if all || fig == "3" {
		fmt.Println("=== Figure 3: MV(1..40) second-coefficient points and MBR decomposition ===")
		fmt.Println(bench.Fig3(cfg.Length))
	}
	if all || fig == "4" {
		fmt.Println("=== Figure 4: a data rectangle before and after transformation (Eq. 12) ===")
		fmt.Println(bench.Fig4(cfg.Length))
	}
	if all || fig == "5" {
		fmt.Println("=== Figure 5: Query 1 time vs number of sequences (16 MVs 10..25, synthetic) ===")
		rows, err := bench.Fig5(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Printf("%10s %14s %14s %14s %10s %12s %12s\n",
			"sequences", "seqscan(s)", "ST-index(s)", "MT-index(s)", "avg out", "ST disk", "MT disk")
		for _, r := range rows {
			fmt.Printf("%10d %14.4f %14.4f %14.4f %10.1f %12.1f %12.1f\n",
				r.X, r.SeqScanSec, r.STSec, r.MTSec, r.AvgOutput, r.STDiskAccesses, r.MTDiskAccesses)
		}
		fmt.Println()
		recordRangeRows(results, "fig5", "sequences", rows)
		if err := writeRangeFigure(outDir, "fig5", "Fig. 5: time per query vs number of sequences", "number of sequences", rows); err != nil {
			return err
		}
	}
	if all || fig == "6" {
		fmt.Println("=== Figure 6: Query 1 time vs number of transformations (stock data) ===")
		rows, err := bench.Fig6(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Printf("%10s %14s %14s %14s %10s %12s %12s\n",
			"transforms", "seqscan(s)", "ST-index(s)", "MT-index(s)", "avg out", "ST disk", "MT disk")
		for _, r := range rows {
			fmt.Printf("%10d %14.4f %14.4f %14.4f %10.1f %12.1f %12.1f\n",
				r.X, r.SeqScanSec, r.STSec, r.MTSec, r.AvgOutput, r.STDiskAccesses, r.MTDiskAccesses)
		}
		fmt.Println()
		recordRangeRows(results, "fig6", "transforms", rows)
		if err := writeRangeFigure(outDir, "fig6", "Fig. 6: time per query vs number of transformations", "number of transformations", rows); err != nil {
			return err
		}
	}
	if all || fig == "7" {
		fmt.Println("=== Figure 7: Query 2 (join, rho >= 0.99) time vs number of transformations ===")
		rows, err := bench.Fig7(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Printf("%10s %14s %14s %14s %10s\n",
			"transforms", "seqscan(s)", "ST-index(s)", "MT-index(s)", "output")
		for _, r := range rows {
			fmt.Printf("%10d %14.4f %14.4f %14.4f %10d\n",
				r.NumTransforms, r.SeqScanSec, r.STSec, r.MTSec, r.OutputSize)
		}
		fmt.Println()
		for _, r := range rows {
			prefix := fmt.Sprintf("fig7/transforms=%d", r.NumTransforms)
			*results = append(*results,
				benchResult{Name: prefix + "/seqscan", NsPerOp: r.SeqScanSec * 1e9},
				benchResult{Name: prefix + "/st-index", NsPerOp: r.STSec * 1e9},
				benchResult{Name: prefix + "/mt-index", NsPerOp: r.MTSec * 1e9},
			)
		}
		if err := writeJoinFigure(outDir, rows); err != nil {
			return err
		}
	}
	if all || fig == "8" {
		fmt.Println("=== Figure 8: transformations per MBR, MV(6..29) (time, disk accesses, Eq. 20 cost) ===")
		rows, err := bench.Fig8(cfg, nil)
		if err != nil {
			return err
		}
		printMBRRows(rows)
		recordMBRRows(results, "fig8", rows)
		if err := writeMBRFigure(outDir, "fig8", "Fig. 8: transformations per MBR, MV(6..29)", rows); err != nil {
			return err
		}
	}
	if all || fig == "9" {
		fmt.Println("=== Figure 9: transformations per MBR, MV(6..29) + inverted (two clusters) ===")
		rows, err := bench.Fig9(cfg, nil)
		if err != nil {
			return err
		}
		printMBRRows(rows)
		recordMBRRows(results, "fig9", rows)
		if err := writeMBRFigure(outDir, "fig9", "Fig. 9: transformations per MBR, two clusters", rows); err != nil {
			return err
		}
	}
	switch fig {
	case "3", "4", "5", "6", "7", "8", "9", "all", "none":
		return nil
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
}

// recordMBRRows converts a Fig. 8/9-style sweep into result objects.
func recordMBRRows(results *[]benchResult, figName string, rows []bench.MBRRow) {
	for _, r := range rows {
		*results = append(*results, benchResult{
			Name:      fmt.Sprintf("%s/per_mbr=%d", figName, r.PerMBR),
			NsPerOp:   r.Sec * 1e9,
			DiskReads: r.DiskAccesses,
		})
	}
}

// writeRangeFigure renders a Fig. 5/6-style chart and CSV into outDir.
func writeRangeFigure(outDir, name, title, xlabel string, rows []bench.RangeRow) error {
	if outDir == "" {
		return nil
	}
	xs := make([]float64, len(rows))
	seq := make([]float64, len(rows))
	st := make([]float64, len(rows))
	mt := make([]float64, len(rows))
	var csv strings.Builder
	csv.WriteString("x,seqscan_sec,st_sec,mt_sec,avg_out,st_disk,mt_disk\n")
	for i, r := range rows {
		xs[i], seq[i], st[i], mt[i] = float64(r.X), r.SeqScanSec, r.STSec, r.MTSec
		fmt.Fprintf(&csv, "%d,%g,%g,%g,%g,%g,%g\n", r.X, r.SeqScanSec, r.STSec, r.MTSec, r.AvgOutput, r.STDiskAccesses, r.MTDiskAccesses)
	}
	chart := plot.Chart{
		Title: title, XLabel: xlabel, YLabel: "seconds per query",
		Series: []plot.Series{
			{Name: "sequential-scan", X: xs, Y: seq, Dashed: true},
			{Name: "ST-index", X: xs, Y: st},
			{Name: "MT-index", X: xs, Y: mt},
		},
	}
	return writeFigureFiles(outDir, name, chart, csv.String())
}

// writeJoinFigure renders the Fig. 7 chart and CSV.
func writeJoinFigure(outDir string, rows []bench.JoinRow) error {
	if outDir == "" {
		return nil
	}
	xs := make([]float64, len(rows))
	seq := make([]float64, len(rows))
	st := make([]float64, len(rows))
	mt := make([]float64, len(rows))
	var csv strings.Builder
	csv.WriteString("transforms,seqscan_sec,st_sec,mt_sec,output\n")
	for i, r := range rows {
		xs[i], seq[i], st[i], mt[i] = float64(r.NumTransforms), r.SeqScanSec, r.STSec, r.MTSec
		fmt.Fprintf(&csv, "%d,%g,%g,%g,%d\n", r.NumTransforms, r.SeqScanSec, r.STSec, r.MTSec, r.OutputSize)
	}
	chart := plot.Chart{
		Title: "Fig. 7: join time vs number of transformations", XLabel: "number of transformations",
		YLabel: "seconds", LogY: true,
		Series: []plot.Series{
			{Name: "sequential-scan", X: xs, Y: seq, Dashed: true},
			{Name: "ST-index", X: xs, Y: st},
			{Name: "MT-index", X: xs, Y: mt},
		},
	}
	return writeFigureFiles(outDir, "fig7", chart, csv.String())
}

// writeMBRFigure renders a Fig. 8/9-style chart and CSV.
func writeMBRFigure(outDir, name, title string, rows []bench.MBRRow) error {
	if outDir == "" {
		return nil
	}
	xs := make([]float64, len(rows))
	secs := make([]float64, len(rows))
	da := make([]float64, len(rows))
	cost := make([]float64, len(rows))
	var csv strings.Builder
	csv.WriteString("per_mbr,sec,disk_accesses,cost_fn\n")
	for i, r := range rows {
		xs[i], secs[i], da[i], cost[i] = float64(r.PerMBR), r.Sec*1000, r.DiskAccesses, r.CostFn
		fmt.Fprintf(&csv, "%d,%g,%g,%g\n", r.PerMBR, r.Sec, r.DiskAccesses, r.CostFn)
	}
	timeChart := plot.Chart{
		Title: title + " — running time", XLabel: "transformations per MBR", YLabel: "msec per query",
		Series: []plot.Series{{Name: "running time", X: xs, Y: secs}},
	}
	daChart := plot.Chart{
		Title: title + " — disk accesses and cost", XLabel: "transformations per MBR", YLabel: "per query",
		Series: []plot.Series{
			{Name: "pure disk accesses", X: xs, Y: da},
			{Name: "cost function (Eq. 20)", X: xs, Y: cost, Dashed: true},
		},
	}
	if err := writeFigureFiles(outDir, name+"-time", timeChart, csv.String()); err != nil {
		return err
	}
	return writeFigureFiles(outDir, name+"-disk", daChart, "")
}

// writeFigureFiles writes the SVG (and, when non-empty, the CSV).
func writeFigureFiles(outDir, name string, chart plot.Chart, csv string) error {
	svg, err := chart.SVG()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(outDir, name+".svg"), []byte(svg), 0o644); err != nil {
		return err
	}
	if csv != "" {
		return os.WriteFile(filepath.Join(outDir, name+".csv"), []byte(csv), 0o644)
	}
	return nil
}

func printMBRRows(rows []bench.MBRRow) {
	fmt.Printf("%10s %14s %16s %16s\n", "per MBR", "time(s)", "disk accesses", "cost fn (Eq.20)")
	for _, r := range rows {
		fmt.Printf("%10d %14.4f %16.1f %16.1f\n", r.PerMBR, r.Sec, r.DiskAccesses, r.CostFn)
	}
	fmt.Println()
}
