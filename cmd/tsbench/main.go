// Command tsbench regenerates the figures of the paper's evaluation
// (Sec. 5). Each figure prints as a table of the same series the paper
// plots; see EXPERIMENTS.md for the recorded paper-vs-measured comparison.
//
// Usage:
//
//	tsbench -fig 5            # Query 1 time vs number of sequences
//	tsbench -fig 6            # Query 1 time vs number of transformations
//	tsbench -fig 7            # Query 2 (join) time vs number of transformations
//	tsbench -fig 8            # transformations-per-MBR sweep, MV(6..29)
//	tsbench -fig 9            # same with inverted transformations added
//	tsbench -fig 3 | -fig 4   # MBR decomposition illustrations
//	tsbench -fig all -queries 100
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tsq/internal/bench"
	"tsq/internal/plot"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 3, 4, 5, 6, 7, 8, 9 or all")
		queries   = flag.Int("queries", 20, "random query repetitions per point (paper: 100)")
		seed      = flag.Int64("seed", 1999, "random seed")
		stocks    = flag.Int("stocks", 1068, "size of the synthetic stock data set")
		length    = flag.Int("length", 128, "series length")
		paperRect = flag.Bool("paper-rect", false, "use the paper's plain eps-box query rectangle")
		outDir    = flag.String("out", "", "directory to also write figN.svg and figN.csv files into")
	)
	flag.Parse()
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "tsbench: %v\n", err)
			os.Exit(1)
		}
	}
	cfg := bench.Config{
		Queries:        *queries,
		Seed:           *seed,
		StockCount:     *stocks,
		Length:         *length,
		PaperQueryRect: *paperRect,
	}
	if err := run(*fig, cfg, *outDir); err != nil {
		fmt.Fprintf(os.Stderr, "tsbench: %v\n", err)
		os.Exit(1)
	}
}

func run(fig string, cfg bench.Config, outDir string) error {
	all := fig == "all"
	if all || fig == "3" {
		fmt.Println("=== Figure 3: MV(1..40) second-coefficient points and MBR decomposition ===")
		fmt.Println(bench.Fig3(cfg.Length))
	}
	if all || fig == "4" {
		fmt.Println("=== Figure 4: a data rectangle before and after transformation (Eq. 12) ===")
		fmt.Println(bench.Fig4(cfg.Length))
	}
	if all || fig == "5" {
		fmt.Println("=== Figure 5: Query 1 time vs number of sequences (16 MVs 10..25, synthetic) ===")
		rows, err := bench.Fig5(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Printf("%10s %14s %14s %14s %10s %12s %12s\n",
			"sequences", "seqscan(s)", "ST-index(s)", "MT-index(s)", "avg out", "ST disk", "MT disk")
		for _, r := range rows {
			fmt.Printf("%10d %14.4f %14.4f %14.4f %10.1f %12.1f %12.1f\n",
				r.X, r.SeqScanSec, r.STSec, r.MTSec, r.AvgOutput, r.STDiskAccesses, r.MTDiskAccesses)
		}
		fmt.Println()
		if err := writeRangeFigure(outDir, "fig5", "Fig. 5: time per query vs number of sequences", "number of sequences", rows); err != nil {
			return err
		}
	}
	if all || fig == "6" {
		fmt.Println("=== Figure 6: Query 1 time vs number of transformations (stock data) ===")
		rows, err := bench.Fig6(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Printf("%10s %14s %14s %14s %10s %12s %12s\n",
			"transforms", "seqscan(s)", "ST-index(s)", "MT-index(s)", "avg out", "ST disk", "MT disk")
		for _, r := range rows {
			fmt.Printf("%10d %14.4f %14.4f %14.4f %10.1f %12.1f %12.1f\n",
				r.X, r.SeqScanSec, r.STSec, r.MTSec, r.AvgOutput, r.STDiskAccesses, r.MTDiskAccesses)
		}
		fmt.Println()
		if err := writeRangeFigure(outDir, "fig6", "Fig. 6: time per query vs number of transformations", "number of transformations", rows); err != nil {
			return err
		}
	}
	if all || fig == "7" {
		fmt.Println("=== Figure 7: Query 2 (join, rho >= 0.99) time vs number of transformations ===")
		rows, err := bench.Fig7(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Printf("%10s %14s %14s %14s %10s\n",
			"transforms", "seqscan(s)", "ST-index(s)", "MT-index(s)", "output")
		for _, r := range rows {
			fmt.Printf("%10d %14.4f %14.4f %14.4f %10d\n",
				r.NumTransforms, r.SeqScanSec, r.STSec, r.MTSec, r.OutputSize)
		}
		fmt.Println()
		if err := writeJoinFigure(outDir, rows); err != nil {
			return err
		}
	}
	if all || fig == "8" {
		fmt.Println("=== Figure 8: transformations per MBR, MV(6..29) (time, disk accesses, Eq. 20 cost) ===")
		rows, err := bench.Fig8(cfg, nil)
		if err != nil {
			return err
		}
		printMBRRows(rows)
		if err := writeMBRFigure(outDir, "fig8", "Fig. 8: transformations per MBR, MV(6..29)", rows); err != nil {
			return err
		}
	}
	if all || fig == "9" {
		fmt.Println("=== Figure 9: transformations per MBR, MV(6..29) + inverted (two clusters) ===")
		rows, err := bench.Fig9(cfg, nil)
		if err != nil {
			return err
		}
		printMBRRows(rows)
		if err := writeMBRFigure(outDir, "fig9", "Fig. 9: transformations per MBR, two clusters", rows); err != nil {
			return err
		}
	}
	switch fig {
	case "3", "4", "5", "6", "7", "8", "9", "all":
		return nil
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
}

// writeRangeFigure renders a Fig. 5/6-style chart and CSV into outDir.
func writeRangeFigure(outDir, name, title, xlabel string, rows []bench.RangeRow) error {
	if outDir == "" {
		return nil
	}
	xs := make([]float64, len(rows))
	seq := make([]float64, len(rows))
	st := make([]float64, len(rows))
	mt := make([]float64, len(rows))
	var csv strings.Builder
	csv.WriteString("x,seqscan_sec,st_sec,mt_sec,avg_out,st_disk,mt_disk\n")
	for i, r := range rows {
		xs[i], seq[i], st[i], mt[i] = float64(r.X), r.SeqScanSec, r.STSec, r.MTSec
		fmt.Fprintf(&csv, "%d,%g,%g,%g,%g,%g,%g\n", r.X, r.SeqScanSec, r.STSec, r.MTSec, r.AvgOutput, r.STDiskAccesses, r.MTDiskAccesses)
	}
	chart := plot.Chart{
		Title: title, XLabel: xlabel, YLabel: "seconds per query",
		Series: []plot.Series{
			{Name: "sequential-scan", X: xs, Y: seq, Dashed: true},
			{Name: "ST-index", X: xs, Y: st},
			{Name: "MT-index", X: xs, Y: mt},
		},
	}
	return writeFigureFiles(outDir, name, chart, csv.String())
}

// writeJoinFigure renders the Fig. 7 chart and CSV.
func writeJoinFigure(outDir string, rows []bench.JoinRow) error {
	if outDir == "" {
		return nil
	}
	xs := make([]float64, len(rows))
	seq := make([]float64, len(rows))
	st := make([]float64, len(rows))
	mt := make([]float64, len(rows))
	var csv strings.Builder
	csv.WriteString("transforms,seqscan_sec,st_sec,mt_sec,output\n")
	for i, r := range rows {
		xs[i], seq[i], st[i], mt[i] = float64(r.NumTransforms), r.SeqScanSec, r.STSec, r.MTSec
		fmt.Fprintf(&csv, "%d,%g,%g,%g,%d\n", r.NumTransforms, r.SeqScanSec, r.STSec, r.MTSec, r.OutputSize)
	}
	chart := plot.Chart{
		Title: "Fig. 7: join time vs number of transformations", XLabel: "number of transformations",
		YLabel: "seconds", LogY: true,
		Series: []plot.Series{
			{Name: "sequential-scan", X: xs, Y: seq, Dashed: true},
			{Name: "ST-index", X: xs, Y: st},
			{Name: "MT-index", X: xs, Y: mt},
		},
	}
	return writeFigureFiles(outDir, "fig7", chart, csv.String())
}

// writeMBRFigure renders a Fig. 8/9-style chart and CSV.
func writeMBRFigure(outDir, name, title string, rows []bench.MBRRow) error {
	if outDir == "" {
		return nil
	}
	xs := make([]float64, len(rows))
	secs := make([]float64, len(rows))
	da := make([]float64, len(rows))
	cost := make([]float64, len(rows))
	var csv strings.Builder
	csv.WriteString("per_mbr,sec,disk_accesses,cost_fn\n")
	for i, r := range rows {
		xs[i], secs[i], da[i], cost[i] = float64(r.PerMBR), r.Sec*1000, r.DiskAccesses, r.CostFn
		fmt.Fprintf(&csv, "%d,%g,%g,%g\n", r.PerMBR, r.Sec, r.DiskAccesses, r.CostFn)
	}
	timeChart := plot.Chart{
		Title: title + " — running time", XLabel: "transformations per MBR", YLabel: "msec per query",
		Series: []plot.Series{{Name: "running time", X: xs, Y: secs}},
	}
	daChart := plot.Chart{
		Title: title + " — disk accesses and cost", XLabel: "transformations per MBR", YLabel: "per query",
		Series: []plot.Series{
			{Name: "pure disk accesses", X: xs, Y: da},
			{Name: "cost function (Eq. 20)", X: xs, Y: cost, Dashed: true},
		},
	}
	if err := writeFigureFiles(outDir, name+"-time", timeChart, csv.String()); err != nil {
		return err
	}
	return writeFigureFiles(outDir, name+"-disk", daChart, "")
}

// writeFigureFiles writes the SVG (and, when non-empty, the CSV).
func writeFigureFiles(outDir, name string, chart plot.Chart, csv string) error {
	svg, err := chart.SVG()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(outDir, name+".svg"), []byte(svg), 0o644); err != nil {
		return err
	}
	if csv != "" {
		return os.WriteFile(filepath.Join(outDir, name+".csv"), []byte(csv), 0o644)
	}
	return nil
}

func printMBRRows(rows []bench.MBRRow) {
	fmt.Printf("%10s %14s %16s %16s\n", "per MBR", "time(s)", "disk accesses", "cost fn (Eq.20)")
	for _, r := range rows {
		fmt.Printf("%10d %14.4f %16.1f %16.1f\n", r.PerMBR, r.Sec, r.DiskAccesses, r.CostFn)
	}
	fmt.Println()
}
