// Command tsinspect examines a tsq database file: the superblock, the
// shape of the R*-tree level by level, heap statistics, and a full
// integrity check (tree invariants, index/record agreement, record-page
// consistency) — the moral equivalent of a database analyzer tool.
//
// Usage:
//
//	tsinspect market.tsq
//	tsinspect -verify=false market.tsq     # skip the integrity scan
package main

import (
	"flag"
	"fmt"
	"os"

	"tsq"
)

func main() {
	verify := flag.Bool("verify", true, "run the full integrity check")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tsinspect [-verify=false] <file.tsq>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *verify); err != nil {
		fmt.Fprintf(os.Stderr, "tsinspect: %v\n", err)
		os.Exit(1)
	}
}

func run(path string, verify bool) error {
	db, err := tsq.OpenFile(path)
	if err != nil {
		return err
	}
	defer func() { _ = db.Close() }() // read-only session

	info, err := db.Info()
	if err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d bytes, %d pages of %d bytes\n", path, st.Size(), info.Pages, info.PageSize)
	fmt.Printf("records: %d series of length %d (paged storage: %v)\n",
		info.Series, info.SeriesLength, info.Paged)
	fmt.Printf("index: %d DFT coefficients (%d dimensions), R*-tree height %d, avg leaf capacity %.1f\n",
		info.IndexedK, 2+2*info.IndexedK, info.TreeHeight, info.LeafCapacity)

	levels, err := db.TreeLevels()
	if err != nil {
		return err
	}
	fmt.Println("\ntree levels (1 = leaves):")
	for _, l := range levels {
		fmt.Printf("  level %d: %5d nodes, avg extents %v\n", l.Level, l.Nodes, formatExtents(l.AvgSide))
	}

	if !verify {
		return nil
	}
	fmt.Print("\nintegrity check... ")
	if err := db.Verify(); err != nil {
		fmt.Println("FAILED")
		return err
	}
	fmt.Println("ok")
	return nil
}

func formatExtents(side []float64) string {
	out := "["
	for i, v := range side {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.3g", v)
	}
	return out + "]"
}
