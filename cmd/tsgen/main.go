// Command tsgen generates time-series datasets as CSV: the synthetic
// random walks of the paper's Sec. 5, the synthetic stock market standing
// in for its 1068-stock data set, and the constructions behind the
// motivating examples (market indexes, spike pairs).
//
// Usage:
//
//	tsgen -kind walks  -count 12000 -length 128 -out walks.csv
//	tsgen -kind stocks -count 1068  -length 128 -out stocks.csv
//	tsgen -kind indexes -length 128 -out indexes.csv
//	tsgen -kind spikes  -length 128 -shift 2 -out spikes.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"tsq/internal/csvio"
	"tsq/internal/datagen"
	"tsq/internal/series"
)

func main() {
	var (
		kind    = flag.String("kind", "walks", "dataset kind: walks | stocks | indexes | spikes | temperatures")
		count   = flag.Int("count", 1068, "number of series (walks, stocks)")
		regions = flag.Int("regions", 6, "regions (temperatures)")
		years   = flag.Int("years", 10, "years per region (temperatures)")
		length  = flag.Int("length", 128, "series length")
		seed    = flag.Int64("seed", 1999, "random seed")
		shift   = flag.Int("shift", 2, "spike offset in days (spikes)")
		out     = flag.String("out", "", "output CSV path (default stdout)")
	)
	flag.Parse()

	var names []string
	var ss []series.Series
	switch *kind {
	case "walks":
		ss = datagen.RandomWalks(*seed, *count, *length)
		names = numbered("walk", len(ss))
	case "stocks":
		ss = datagen.StockMarket(*seed, *count, *length, datagen.DefaultMarketOptions())
		names = numbered("stock", len(ss))
	case "indexes":
		compv, nyv, decl := datagen.MarketIndexes(*seed, *length)
		ss = []series.Series{compv, nyv, decl}
		names = []string{"COMPV", "NYV", "DECL"}
	case "spikes":
		pcg, pcl := datagen.SpikePair(*seed, *length, *shift)
		ss = []series.Series{pcg, pcl}
		names = []string{"PCG", "PCL"}
	case "temperatures":
		ss, names = datagen.Temperatures(*seed, *regions, *years, *length)
	default:
		fmt.Fprintf(os.Stderr, "tsgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	var err error
	if *out == "" {
		err = csvio.Write(os.Stdout, names, ss)
	} else {
		err = csvio.WriteFile(*out, names, ss)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsgen: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Printf("wrote %d series of length %d to %s\n", len(ss), *length, *out)
	}
}

func numbered(prefix string, n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("%s%04d", prefix, i)
	}
	return names
}
