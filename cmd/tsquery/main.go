// Command tsquery runs similarity queries over a CSV dataset: range
// queries (Query 1), self-joins (Query 2), and nearest-neighbor queries,
// under a transformation pipeline, with a choice of algorithm.
//
// Usage:
//
//	tsquery -data stocks.csv -query stock0007 -pipeline "mv(5..34)" -rho 0.96
//	tsquery -data stocks.csv -join -pipeline "mv(5..34)" -rho 0.99 -algo mt
//	tsquery -data stocks.csv -query 12 -pipeline "shift(0..5) | mv(1..20)" -nn 5
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"tsq"
	"tsq/internal/csvio"
	"tsq/internal/datagen"
	"tsq/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "tsquery: %v\n", err)
		os.Exit(1)
	}
}

// setDebugState publishes the opened DB to the debug server; nil when
// -debug-addr is not in use.
var setDebugState func(db *tsq.DB, ts []tsq.Transform, groups [][]int)

func run() error {
	var (
		data      = flag.String("data", "", "input CSV dataset (this or -db is required)")
		dbPath    = flag.String("db", "", "query an existing .tsq database file instead of a CSV")
		save      = flag.String("save", "", "build a .tsq database file from -data and exit")
		queryArg  = flag.String("query", "", "query series: a name or a numeric id from the dataset")
		pipeline  = flag.String("pipeline", "id", `transformation pipeline, e.g. "shift(0..10) | mv(1..40)"`)
		rho       = flag.Float64("rho", 0, "correlation threshold (exclusive with -dist)")
		dist      = flag.Float64("dist", 0, "distance threshold on normal forms")
		algo      = flag.String("algo", "mt", "algorithm: mt | st | seq")
		perMBR    = flag.Int("per-mbr", 0, "transformations per MBR (0 = all in one)")
		clustered = flag.Bool("cluster", false, "cluster transformations before building MBRs")
		paperRect = flag.Bool("paper-rect", false, "use the paper's plain eps-box query rectangle")
		ordering  = flag.Bool("ordering", false, "binary-search evaluation for orderable (scale) sets")
		join      = flag.Bool("join", false, "run the self-join (Query 2) instead of a range query")
		nn        = flag.Int("nn", 0, "run a k-nearest-neighbor query with this k")
		subseq    = flag.Int("subseq", 0, "subsequence matching with this window length (query gives the pattern source)")
		offset    = flag.Int("offset", 0, "pattern offset within the query series (with -subseq)")
		maxPrint  = flag.Int("max-print", 25, "maximum result rows to print")
		info      = flag.Bool("info", false, "print database shape information and exit")
		explain   = flag.Bool("explain", false, "print the planner's cost comparison and an EXPLAIN ANALYZE of all three algorithms instead of running the query")
		trace     = flag.Bool("trace", false, "print the query's span tree after running it")
		inspect   = flag.Bool("inspect", false, "print the index health report (R*-tree occupancy/overlap, heap utilization, transformation groups) and exit")
		check     = flag.Bool("check", false, "scrub the -db file (header, page checksums, structural integrity, WAL segments) and exit; nonzero exit status on corruption")
		insertN   = flag.Int("insert", 0, "append this many random-walk series to -db and exit")
		insSeed   = flag.Int64("seed", 1, "random seed for -insert")
		kill      = flag.Bool("kill", false, "with -insert: exit without closing the database, simulating a crash (the WAL replays on next open)")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /index, /queries, /rates, /debug/bundle and /debug/pprof/ on this address while the command runs")
		queryLog  = flag.Bool("qlog", false, "emit one structured log record per query to stderr (slow queries carry their trace)")
		attrib    = flag.Bool("attrib", false, "per-query resource attribution: sample alloc/GC deltas and run queries under pprof labels")
		bundleOut = flag.String("bundle", "", `write a support bundle (JSON) to this path after the query runs ("-" for stdout); exits nonzero if the bundle's reconciliation checks fail`)
		shards    = flag.Int("shards", 0, "partition the database into this many independent shards (with -data; 0 or 1 = unsharded)")
		capPath   = flag.String("capture", "", "journal every query to this capture file (replay it with tsreplay)")
		version   = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("tsquery", obs.ReadBuildSection())
		return nil
	}
	if *capPath != "" {
		if _, err := tsq.EnableCapture(*capPath, tsq.CaptureOptions{}); err != nil {
			return err
		}
		defer func() {
			st := tsq.CaptureSnapshot()
			if err := tsq.DisableCapture(); err != nil {
				fmt.Fprintf(os.Stderr, "tsquery: closing capture: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "capture: %d of %d queries journaled to %s\n", st.Written, st.Seen, *capPath)
		}()
	}
	if *bundleOut != "" {
		// The bundle's recorder-coverage check expects the recorder to
		// have seen every counted query, so both go on before any query
		// runs; threshold 1ns retains everything.
		tsq.EnableFlightRecorder(tsq.RecorderOptions{Threshold: time.Nanosecond})
		tsq.StartSampler(tsq.SamplerOptions{})
		defer tsq.StopSampler()
		tsq.EnableResourceAttribution()
	}
	if *attrib {
		tsq.EnableResourceAttribution()
	}
	if *queryLog {
		tsq.EnableQueryLog(slog.NewTextHandler(os.Stderr, nil), tsq.QueryLogOptions{})
	}
	if *debugAddr != "" {
		// The DB and pipeline are resolved after flag handling; the mux
		// is built once they are (503 until then) so /index and
		// /debug/bundle see the open database.
		var dbgMux atomic.Pointer[http.ServeMux]
		setDebugState = func(db *tsq.DB, ts []tsq.Transform, groups [][]int) {
			m := http.NewServeMux()
			tsq.EnableDebugHandlers(m, db, tsq.WithIndexEndpoint(ts, groups))
			dbgMux.Store(m)
		}
		if *bundleOut == "" {
			tsq.EnableFlightRecorder(tsq.RecorderOptions{})
			tsq.StartSampler(tsq.SamplerOptions{})
			defer tsq.StopSampler()
		}
		go func() {
			err := http.ListenAndServe(*debugAddr, http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
				m := dbgMux.Load()
				if m == nil {
					http.Error(w, "database not open yet", http.StatusServiceUnavailable)
					return
				}
				m.ServeHTTP(w, req)
			}))
			if err != nil {
				fmt.Fprintf(os.Stderr, "tsquery: debug server: %v\n", err)
			}
		}()
		fmt.Printf("debug server on http://%s (/metrics, /index, /queries, /rates, /debug/bundle, /debug/pprof/)\n", *debugAddr)
	}
	if *check {
		if *dbPath == "" {
			return fmt.Errorf("-check requires -db")
		}
		report, err := tsq.CheckFile(*dbPath)
		if err != nil {
			return err
		}
		fmt.Print(report.String())
		if !report.OK() {
			return fmt.Errorf("%s is corrupt", *dbPath)
		}
		return nil
	}
	if *insertN > 0 {
		if *dbPath == "" {
			return fmt.Errorf("-insert requires -db")
		}
		db, err := tsq.OpenFile(*dbPath)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(*insSeed))
		n := db.SeriesLength()
		base := db.Len()
		for i := 0; i < *insertN; i++ {
			name := fmt.Sprintf("ins%06d", base+i)
			if _, err := db.Insert(name, datagen.RandomWalk(rng, n)); err != nil {
				return fmt.Errorf("inserting series %d: %w", i, err)
			}
		}
		if *kill {
			// Simulate a crash: exit without Close, so nothing is
			// checkpointed and the main file may miss the new pages. Every
			// insert was acknowledged, so the WAL replays them on next open.
			fmt.Printf("inserted %d series into %s; exiting without close (simulated crash)\n", *insertN, *dbPath)
			os.Exit(0)
		}
		if err := db.Close(); err != nil {
			return fmt.Errorf("closing %s: %w", *dbPath, err)
		}
		fmt.Printf("inserted %d series into %s\n", *insertN, *dbPath)
		return nil
	}
	var db *tsq.DB
	var names []string
	switch {
	case *data != "" && *dbPath != "":
		return fmt.Errorf("-data and -db are exclusive")
	case *dbPath != "":
		var err error
		db, err = tsq.OpenFile(*dbPath)
		if err != nil {
			return err
		}
		defer func() { _ = db.Close() }() // read-only session
		names = make([]string, db.Len())
		for i := range names {
			names[i] = db.Name(int64(i))
		}
	case *data != "":
		var ss []tsq.Series
		var err error
		names, ss, err = csvio.ReadFile(*data)
		if err != nil {
			return err
		}
		if *save != "" {
			db, err = tsq.CreateFile(*save, ss, names, tsq.Options{Shards: *shards})
			if err != nil {
				return err
			}
			n := db.Len()
			// Close flushes and syncs; a failure here means the file is not
			// durable, so it must not be reported as written.
			if err := db.Close(); err != nil {
				return fmt.Errorf("closing %s: %w", *save, err)
			}
			fmt.Printf("wrote %d series to %s\n", n, *save)
			return nil
		}
		db, err = tsq.Open(ss, names, tsq.Options{Shards: *shards})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("-data or -db is required")
	}
	n := db.SeriesLength()
	p, err := tsq.ParsePipeline(*pipeline, n)
	if err != nil {
		return err
	}
	ts := p.Flatten()
	fmt.Printf("dataset: %d series of length %d; pipeline %q -> %d transformations\n",
		db.Len(), n, *pipeline, len(ts))
	if *info {
		meta, err := db.Info()
		if err != nil {
			return err
		}
		fmt.Printf("index: k=%d, tree height %d, %d pages of %d bytes, avg leaf capacity %.1f, paged=%v, shards=%d\n",
			meta.IndexedK, meta.TreeHeight, meta.Pages, meta.PageSize, meta.LeafCapacity, meta.Paged, meta.Shards)
		return nil
	}

	var thr tsq.Threshold
	switch {
	case *rho != 0 && *dist != 0:
		return fmt.Errorf("-rho and -dist are exclusive")
	case *rho != 0:
		thr = tsq.Correlation(*rho)
	case *dist != 0:
		thr = tsq.Distance(*dist)
	default:
		thr = tsq.Correlation(0.96)
	}

	opts := tsq.QueryOptions{
		TransformsPerMBR: *perMBR,
		ClusterPartition: *clustered,
		PaperQueryRect:   *paperRect,
		UseOrdering:      *ordering,
	}
	switch *algo {
	case "mt":
		opts.Algorithm = tsq.MTIndex
	case "st":
		opts.Algorithm = tsq.STIndex
	case "seq":
		opts.Algorithm = tsq.SeqScan
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}

	groups := db.QueryGroups(ts, opts)
	if setDebugState != nil {
		setDebugState(db, ts, groups)
	}
	if *inspect {
		hr, err := db.IndexHealth(context.Background(), ts, groups)
		if err != nil {
			return err
		}
		fmt.Print(hr.String())
		return nil
	}

	if *explain {
		var id int64
		if *queryArg != "" {
			id, err = resolveQuery(db, names, *queryArg)
			if err != nil {
				return err
			}
		}
		text, err := db.Explain(db.Get(id), ts, thr)
		if err != nil {
			return err
		}
		fmt.Println("=== planner ===")
		fmt.Println(text)
		return explainAnalyze(db, id, ts, thr, opts)
	}

	if *join {
		matches, st, err := db.Join(ts, thr, opts)
		if err != nil {
			return err
		}
		fmt.Printf("join (%v, %v): %d matches\n", opts.Algorithm, thr, len(matches))
		for i, m := range matches {
			if i >= *maxPrint {
				fmt.Printf("... %d more\n", len(matches)-i)
				break
			}
			fmt.Printf("  %-12s ~ %-12s via %-8s dist %.4f\n",
				db.Name(m.IDA), db.Name(m.IDB), ts[m.TransformIdx].Name, m.Distance)
		}
		printStats(st)
		return writeBundle(db, *bundleOut)
	}

	id, err := resolveQuery(db, names, *queryArg)
	if err != nil {
		return err
	}
	if *subseq > 0 {
		w := *subseq
		src := db.Get(id)
		if *offset < 0 || *offset+w > len(src) {
			return fmt.Errorf("pattern [%d, %d) out of range for series of length %d", *offset, *offset+w, len(src))
		}
		pattern := src[*offset : *offset+w]
		all := make([]tsq.Series, db.Len())
		for i := range all {
			all[i] = db.Get(int64(i))
		}
		ix, err := tsq.NewSubsequenceIndex(all, tsq.SubseqOptions{Window: w})
		if err != nil {
			return err
		}
		eps := thr.Epsilon(w)
		matches, sst, err := ix.Search(pattern, eps)
		if err != nil {
			return err
		}
		fmt.Printf("subsequence search: window %d of %s at offset %d, eps %.3f: %d occurrences\n",
			w, db.Name(id), *offset, eps, len(matches))
		for i, m := range matches {
			if i >= *maxPrint {
				fmt.Printf("... %d more\n", len(matches)-i)
				break
			}
			fmt.Printf("  %-12s offset %4d dist %.4f\n", names[m.Seq], m.Offset, m.Distance)
		}
		fmt.Printf("stats: %d node accesses, %d windows verified\n", sst.NodeAccesses, sst.Candidates)
		return writeBundle(db, *bundleOut)
	}
	ctx := context.Background()
	var tr *tsq.Trace
	if *trace {
		tr = tsq.NewTrace()
		ctx = tsq.WithTrace(ctx, tr)
	}
	if *nn > 0 {
		matches, st, err := db.NearestNeighborsCtx(ctx, db.Get(id), ts, *nn, opts)
		if err != nil {
			return err
		}
		fmt.Printf("%d nearest neighbors of %s (%v):\n", *nn, db.Name(id), opts.Algorithm)
		for _, m := range matches {
			fmt.Printf("  %-12s via %-8s dist %.4f (rho %.4f)\n",
				db.Name(m.RecordID), ts[m.TransformIdx].Name, m.Distance,
				1-m.Distance*m.Distance/(2*float64(n-1)))
		}
		printStats(st)
		printTrace(tr)
		return writeBundle(db, *bundleOut)
	}

	matches, st, err := db.RangeByIDCtx(ctx, id, ts, thr, opts)
	if err != nil {
		return err
	}
	fmt.Printf("range query around %s (%v, %v): %d matches\n",
		db.Name(id), opts.Algorithm, thr, len(matches))
	for i, m := range matches {
		if i >= *maxPrint {
			fmt.Printf("... %d more\n", len(matches)-i)
			break
		}
		d := "not computed (ordering)"
		if m.Distance >= 0 {
			d = fmt.Sprintf("%.4f", m.Distance)
		}
		fmt.Printf("  %-12s via %-8s dist %s\n", db.Name(m.RecordID), ts[m.TransformIdx].Name, d)
	}
	printStats(st)
	printTrace(tr)
	return writeBundle(db, *bundleOut)
}

// writeBundle collects a support bundle into path ("" disables, "-" is
// stdout) and fails on reconciliation mismatch, so scripted invocations
// (CI smoke) assert internal consistency by exit status alone.
func writeBundle(db *tsq.DB, path string) error {
	if path == "" {
		return nil
	}
	b, err := tsq.CollectBundle(context.Background(), db, tsq.BundleOptions{ExpectCompleteRecorder: true})
	if err != nil {
		return err
	}
	if path == "-" {
		if err := b.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := b.WriteJSON(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if !b.OK() {
		for _, c := range b.FailedChecks() {
			fmt.Fprintf(os.Stderr, "bundle check FAILED: %s: %s\n", c.Name, c.Detail)
		}
		return fmt.Errorf("support bundle failed %d reconciliation checks", len(b.FailedChecks()))
	}
	fmt.Fprintf(os.Stderr, "bundle: %d reconciliation checks passed\n", len(b.Reconciliation))
	return nil
}

// printTrace renders a span tree when tracing was requested.
func printTrace(tr *tsq.Trace) {
	if tr == nil {
		return
	}
	fmt.Println("trace:")
	fmt.Print(tr.String())
}

// explainAnalyze runs the same range query under each of the three
// algorithms with tracing on, prints each span tree, cross-checks the
// trace's I/O attribution against the storage manager's counter deltas,
// and closes with the paper's headline numbers (disk accesses, candidate
// ratio, false positives) side by side — Fig. 5 for one query.
func explainAnalyze(db *tsq.DB, id int64, ts []tsq.Transform, thr tsq.Threshold, opts tsq.QueryOptions) error {
	type row struct {
		name      string
		da        int64
		cand      int64
		skipped   int64
		sk0       int64
		sk1       int64
		sk2       int64
		abandoned int64
		fp        int64
		matches   int
		dur       time.Duration
	}
	var rows []row
	fmt.Println("\n=== EXPLAIN ANALYZE ===")
	for _, ar := range []struct {
		name string
		alg  tsq.Algorithm
	}{
		{"seqscan", tsq.SeqScan},
		{"st-index", tsq.STIndex},
		{"mt-index", tsq.MTIndex},
	} {
		o := opts
		o.Algorithm = ar.alg
		tr := tsq.NewTrace()
		ctx := tsq.WithTrace(context.Background(), tr)
		before := db.DiskStats()
		start := time.Now()
		matches, st, err := db.RangeByIDCtx(ctx, id, ts, thr, o)
		dur := time.Since(start)
		if err != nil {
			return err
		}
		after := db.DiskStats()

		fmt.Printf("\n--- %s ---\n", ar.name)
		fmt.Print(tr.String())
		printShardRollup(tr)
		storageIO := (after.Reads - before.Reads) + (after.Hits - before.Hits) +
			(after.Prefetched - before.Prefetched)
		tracedIO := tr.Sum(obs.KindProbe, obs.APagesRead) + tr.Sum(obs.KindProbe, obs.ABufferHits) +
			tr.Sum(obs.KindProbe, obs.APagesPrefetched) +
			tr.Sum(obs.KindPlan, obs.APagesRead) + tr.Sum(obs.KindPlan, obs.ABufferHits)
		verdict := "OK"
		if tracedIO != storageIO {
			verdict = "MISMATCH"
		}
		fmt.Printf("cross-check: trace attributes %d page fetches (%d prefetched), storage counted %d — %s\n",
			tracedIO, tr.Sum(obs.KindProbe, obs.APagesPrefetched), storageIO, verdict)
		rows = append(rows, row{
			name:      ar.name,
			da:        storageIO,
			cand:      int64(st.Candidates),
			skipped:   int64(st.SkippedLB),
			sk0:       int64(st.SkippedLB0),
			sk1:       int64(st.SkippedLB1),
			sk2:       int64(st.SkippedLB2),
			abandoned: int64(st.Abandoned),
			fp:        tr.Sum(obs.KindVerify, obs.AFalsePositives),
			matches:   len(matches),
			dur:       dur,
		})
	}

	nS := int64(db.Len())
	fmt.Printf("\n%-10s %14s %12s %12s %11s %7s %7s %7s %11s %11s %9s %12s\n",
		"algorithm", "disk accesses", "candidates", "cand ratio", "skipped lb", "lb t0", "lb t1", "lb t2", "abandoned", "false pos", "matches", "time")
	for _, r := range rows {
		ratio := 0.0
		if nS > 0 {
			ratio = float64(r.cand) / float64(nS)
		}
		fmt.Printf("%-10s %14d %12d %12.3f %11d %7d %7d %7d %11d %11d %9d %12s\n",
			r.name, r.da, r.cand, ratio, r.skipped, r.sk0, r.sk1, r.sk2, r.abandoned, r.fp, r.matches, r.dur.Round(time.Microsecond))
	}
	return nil
}

// printShardRollup aggregates the trace's probe spans by shard ordinal
// and prints one row per shard. Scatter-gather probes carry the shard
// attribute only on multi-shard databases, so unsharded traces print
// nothing.
func printShardRollup(tr *tsq.Trace) {
	type agg struct {
		probes  int
		pages   int64
		hits    int64
		cand    int64
		matches int64
		dur     time.Duration
	}
	byShard := map[int64]*agg{}
	var order []int64
	for _, s := range tr.Spans() {
		if s.Kind() != obs.KindProbe || !s.Has(obs.AShard) {
			continue
		}
		id := s.Get(obs.AShard)
		a := byShard[id]
		if a == nil {
			a = &agg{}
			byShard[id] = a
			order = append(order, id)
		}
		a.probes++
		a.pages += s.Get(obs.APagesRead)
		a.hits += s.Get(obs.ABufferHits)
		a.cand += s.Get(obs.ACandidates)
		a.matches += s.Get(obs.AMatches)
		a.dur += s.Duration()
	}
	if len(byShard) == 0 {
		return
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	fmt.Printf("per-shard rollup (%d shards probed):\n", len(order))
	fmt.Printf("  %-7s %7s %11s %9s %11s %9s %12s\n",
		"shard", "probes", "pages_read", "buf_hits", "candidates", "matches", "probe time")
	for _, id := range order {
		a := byShard[id]
		fmt.Printf("  %-7d %7d %11d %9d %11d %9d %12s\n",
			id, a.probes, a.pages, a.hits, a.cand, a.matches, a.dur.Round(time.Microsecond))
	}
}

// resolveQuery interprets the -query argument as a name or numeric id.
func resolveQuery(db *tsq.DB, names []string, arg string) (int64, error) {
	if arg == "" {
		return 0, fmt.Errorf("-query is required for range and NN queries")
	}
	for i, name := range names {
		if name == arg {
			return int64(i), nil
		}
	}
	id, err := strconv.ParseInt(arg, 10, 64)
	if err != nil || db.Get(id) == nil {
		return 0, fmt.Errorf("no series named or numbered %q in the dataset", arg)
	}
	return id, nil
}

func printStats(st tsq.Stats) {
	fmt.Printf("stats: %d index searches, %d node accesses (%d leaf), %d candidates, %d comparisons\n",
		st.IndexSearches, st.DAAll, st.DALeaf, st.Candidates, st.Comparisons)
	if st.SkippedLB > 0 || st.Abandoned > 0 {
		fmt.Printf("pipeline: %d candidates skipped by the lower-bound cascade (tier 0/1/2: %d/%d/%d), %d verifications abandoned early\n",
			st.SkippedLB, st.SkippedLB0, st.SkippedLB1, st.SkippedLB2, st.Abandoned)
	}
}
