package tsq

import (
	"time"

	"tsq/internal/obs"
	"tsq/internal/storage"
	"tsq/internal/subseq"
)

// SubseqMatch is one subsequence-matching answer: sequence Seq matches
// the query window at offset Offset.
type SubseqMatch = subseq.Match

// SubseqStats reports the work of a subsequence search.
type SubseqStats = subseq.Stats

// SubseqOptions configures NewSubsequenceIndex. Window is required; see
// the subseq package for the remaining knobs.
type SubseqOptions = subseq.Options

// SubsequenceIndex answers subsequence-matching queries: given a query of
// the index's window length w, find every stored position whose length-w
// window is within a distance threshold. It implements the trail/subtrail
// scheme of Faloutsos et al. (SIGMOD '94), the subsequence extension of
// the whole-matching index this library reproduces; the feature map is
// contractive, so results are exact.
type SubsequenceIndex struct {
	ix *subseq.Index
}

// NewSubsequenceIndex builds a trail index over every window of the given
// sequences (which need not share a length; sequences shorter than the
// window are skipped).
func NewSubsequenceIndex(ss []Series, opts SubseqOptions) (*SubsequenceIndex, error) {
	ix, err := subseq.Build(ss, opts)
	if err != nil {
		return nil, err
	}
	return &SubsequenceIndex{ix: ix}, nil
}

// Window returns the indexed window length.
func (x *SubsequenceIndex) Window() int { return x.ix.Window() }

// Search returns every (sequence, offset) within eps of the query, which
// must have the window length. Like whole-matching queries, searches are
// journaled when workload capture is enabled.
func (x *SubsequenceIndex) Search(q Series, eps float64) ([]SubseqMatch, SubseqStats, error) {
	cw := captureWriter.Load()
	if cw == nil {
		return x.ix.Search(q, eps)
	}
	start := time.Now()
	ioPre := storage.GlobalStats()
	m, st, err := x.ix.Search(q, eps)
	captureSubseq(cw, obs.NextQueryID(), q, eps, x.ix.Window(), m, st,
		time.Since(start), err, ioPre, storage.GlobalStats())
	return m, st, err
}

// ScanSubsequences is the brute-force oracle for subsequence matching.
func ScanSubsequences(ss []Series, q Series, eps float64) []SubseqMatch {
	return subseq.ScanSearch(ss, q, eps)
}
