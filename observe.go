// Aggregate observability: index health reports, the slow-query flight
// recorder, and the windowed stats sampler. The recorder and sampler
// are process-wide (like the default metrics registry) and disabled by
// default; when disabled the query hot path pays exactly one atomic
// pointer load and zero allocations (pinned by benchmark).

package tsq

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	httppprof "net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"tsq/internal/core"
	"tsq/internal/obs"
	"tsq/internal/storage"
	"tsq/internal/wal"
)

// HealthReport is an index health analysis; see DB.IndexHealth.
type HealthReport = core.HealthReport

// GroupHealth is the per-transformation-group section of a HealthReport.
type GroupHealth = core.GroupHealth

// QueryRecord is one query retained by the flight recorder.
type QueryRecord = obs.QueryRecord

// RecorderSnapshot is the drained state of the flight recorder.
type RecorderSnapshot = obs.RecorderSnapshot

// RecorderOptions configures the flight recorder; zero values pick
// defaults (128 slow slots, 64 sampled, 10ms threshold).
type RecorderOptions = obs.RecorderOptions

// SamplerOptions configures the stats sampler; zero values pick
// defaults (1s interval, 300 snapshots retained).
type SamplerOptions = obs.SamplerOptions

// WindowStats is one sliding window of derived rates; see RatesHandler.
type WindowStats = obs.WindowStats

// RatesReport is the versioned envelope the /rates endpoint serves.
type RatesReport = obs.RatesReport

// QueryLogOptions configures the structured query log; zero values pick
// defaults (log every query, 100 records/s, 100ms slow threshold).
type QueryLogOptions = obs.QueryLogOptions

// QueryLogStats reports what the query log emitted, sampled out and
// dropped.
type QueryLogStats = obs.QueryLogStats

// Bundle is a support bundle; see WriteBundle.
type Bundle = obs.Bundle

// BundleOptions configures support-bundle collection; see WriteBundle.
type BundleOptions = obs.BundleOptions

// IndexHealth walks the DB's index read-only and reports its structural
// health: R*-tree per-level occupancy/margin/overlap/dead space, heap
// file liveness and utilization, storage counters, and — when ts is
// non-empty — per-transformation-group rectangle volumes (groups nil
// profiles all of ts as one group). Fold traced queries into the
// report's group counters with HealthReport.FoldTrace.
func (db *DB) IndexHealth(ctx context.Context, ts []Transform, groups [][]int) (*HealthReport, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.ix.Health(ctx, ts, groups)
}

// QueryGroups resolves the transformation partition a range query with
// these options would use (nil when the whole set forms one group) —
// pass it to IndexHealth to profile the same groups queries run with.
func (db *DB) QueryGroups(ts []Transform, opts QueryOptions) [][]int {
	return db.rangeOpts(ts, opts).Groups
}

// IndexHandler serves db's health report — the `-debug-addr` /index
// endpoint. JSON by default, the -inspect text report with
// ?format=text; ts/groups select the transformation groups profiled.
// On a sharded DB, ?shard=N serves shard N's section alone (400 when
// out of range or the DB is not sharded). The walk reads every index
// page, so each request is a full (buffered) index scan — an operator
// action, not a scrape target.
func IndexHandler(db *DB, ts []Transform, groups [][]int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		hr, err := db.IndexHealth(req.Context(), ts, groups)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if v := req.URL.Query().Get("shard"); v != "" {
			i, err := strconv.Atoi(v)
			if err != nil || i < 0 || i >= len(hr.Shards) {
				http.Error(w, fmt.Sprintf("shard must be in [0, %d)", len(hr.Shards)), http.StatusBadRequest)
				return
			}
			hr = hr.Shards[i]
		}
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			hr.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(hr)
	})
}

// flightRecorder, statsSampler and queryLogger are the process-wide
// instances; nil means disabled. One atomic load on the query path
// decides.
var (
	flightRecorder atomic.Pointer[obs.Recorder]
	statsSampler   atomic.Pointer[obs.Sampler]
	queryLogger    atomic.Pointer[obs.QueryLogger]
)

// EnableFlightRecorder installs a process-wide slow-query flight
// recorder and returns it. Completed Range and NearestNeighbors queries
// above opts.Threshold are retained in a fixed ring; queries below it
// are reservoir-sampled. A recorder already installed is replaced (its
// contents are dropped).
func EnableFlightRecorder(opts RecorderOptions) *obs.Recorder {
	rec := obs.NewRecorder(opts)
	flightRecorder.Store(rec)
	return rec
}

// DisableFlightRecorder removes the process-wide recorder; the query
// path reverts to a single nil-pointer check.
func DisableFlightRecorder() { flightRecorder.Store(nil) }

// FlightRecorderSnapshot drains the current recorder contents; the zero
// snapshot when no recorder is installed.
func FlightRecorderSnapshot() RecorderSnapshot { return flightRecorder.Load().Snapshot() }

// QueriesHandler serves the flight recorder contents as JSON — the
// `-debug-addr` /queries endpoint. 503 while no recorder is installed.
func QueriesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		rec := flightRecorder.Load()
		if rec == nil {
			http.Error(w, "flight recorder not enabled", http.StatusServiceUnavailable)
			return
		}
		rec.Handler().ServeHTTP(w, req)
	})
}

// StartSampler launches the process-wide windowed stats sampler over
// the default metrics registry (plus the function-backed storage
// counters) and returns it. A sampler already running is stopped and
// replaced.
func StartSampler(opts SamplerOptions) *obs.Sampler {
	s := obs.NewSampler(obs.Default, opts)
	if old := statsSampler.Swap(s); old != nil {
		old.Stop()
	}
	s.Start()
	return s
}

// StopSampler stops and removes the process-wide sampler.
func StopSampler() {
	if old := statsSampler.Swap(nil); old != nil {
		old.Stop()
	}
}

// DefaultRateWindows are the spans RatesHandler reports.
var DefaultRateWindows = []time.Duration{10 * time.Second, time.Minute, 5 * time.Minute}

// RatesHandler serves windowed rates (QPS, page-read and buffer-hit
// rates, windowed latency quantiles) as JSON — the `-debug-addr`
// /rates endpoint. 503 while no sampler is running.
func RatesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s := statsSampler.Load()
		if s == nil {
			http.Error(w, "stats sampler not running", http.StatusServiceUnavailable)
			return
		}
		s.Handler(DefaultRateWindows...).ServeHTTP(w, req)
	})
}

// EnableQueryLog installs a process-wide structured query log writing
// to the given slog handler and returns the logger (its Stats method
// reports what was emitted). Every completed Range and NearestNeighbors
// query becomes one record, subject to the options' sampling and rate
// limit; queries at or above the slow threshold are promoted to Warn
// level with the rendered trace attached (when the query ran under
// one). A logger already installed is replaced. With no logger the
// query path pays one atomic load and zero allocations.
func EnableQueryLog(h slog.Handler, opts QueryLogOptions) *obs.QueryLogger {
	l := obs.NewQueryLogger(h, opts)
	queryLogger.Store(l)
	return l
}

// DisableQueryLog removes the process-wide query log.
func DisableQueryLog() { queryLogger.Store(nil) }

// QueryLogSnapshot returns the current query log's emission counters;
// the zero stats when no log is installed.
func QueryLogSnapshot() QueryLogStats { return queryLogger.Load().Stats() }

// EnableResourceAttribution turns on per-query resource attribution:
// each Range and NearestNeighbors query samples process resource totals
// (heap allocation, GC cycles, stop-the-world pause) around its
// dispatch and books the delta into its Stats, its root trace span and
// its query-log record, and the query runs under runtime/pprof labels
// (tsq_query, tsq_algo, tsq_qid) so CPU and heap profiles group by
// query shape. The totals are process-wide: under concurrent queries
// the deltas overlap — attribution is a diagnostics signal, not exact
// metering. Costs two runtime samples (~µs) and the label set per
// query; disabled (the default) it is one atomic load.
func EnableResourceAttribution() { obs.SetAttribution(true) }

// DisableResourceAttribution turns per-query resource attribution off.
func DisableResourceAttribution() { obs.SetAttribution(false) }

// DebugOption customizes EnableDebugHandlers.
type DebugOption func(*debugConfig)

type debugConfig struct {
	index       bool
	indexTS     []Transform
	indexGroups [][]int
}

// WithIndexEndpoint additionally registers the /index health endpoint,
// profiling the given transformation set and groups (see IndexHandler).
// It lives behind an option because the endpoint needs the set the
// deployment queries with, and each request walks the whole index.
func WithIndexEndpoint(ts []Transform, groups [][]int) DebugOption {
	return func(c *debugConfig) {
		c.index = true
		c.indexTS = ts
		c.indexGroups = groups
	}
}

// EnableDebugHandlers registers the library's diagnostic endpoints on
// mux: /metrics, /queries, /rates, /debug/bundle, and the stdlib
// net/http/pprof profile handlers under /debug/pprof/. db may be nil
// (bundles then carry no index health). Add /index with
// WithIndexEndpoint. Opt-in by design: importing tsq alone exposes
// nothing (note the stdlib net/http/pprof package registers its
// handlers on http.DefaultServeMux as an import side effect; pass a
// private mux here to keep the debug surface off your main listener).
func EnableDebugHandlers(mux *http.ServeMux, db *DB, opts ...DebugOption) {
	var cfg debugConfig
	for _, o := range opts {
		o(&cfg)
	}
	mux.Handle("/metrics", MetricsHandler())
	mux.Handle("/queries", QueriesHandler())
	mux.Handle("/rates", RatesHandler())
	mux.Handle("/debug/bundle", BundleHandler(db))
	if cfg.index {
		mux.Handle("/index", IndexHandler(db, cfg.indexTS, cfg.indexGroups))
	}
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
}

// bundleCounterPairs are the counter/histogram pairs the facade bumps
// in lockstep (once each per query); bundle reconciliation checks them
// for exact agreement.
func bundleCounterPairs() map[string]string {
	return map[string]string{
		"tsq_range_queries_total": "tsq_range_latency_ns",
		"tsq_nn_queries_total":    "tsq_nn_latency_ns",
	}
}

// CollectBundle assembles a support bundle from the process-wide
// diagnostics (default registry, sampler, flight recorder, query log)
// plus db's index health report when db is non-nil. The bundle audits
// itself — registry counters against histogram totals, recorder ring
// accounting, record rollups against their retained traces — and
// Bundle.OK reports the verdict; a failing bundle is still returned
// (the mismatch is the diagnostic). The index walk reads every index
// page and the optional CPU profile blocks for its duration: an
// operator action, not a scrape target.
func CollectBundle(ctx context.Context, db *DB, opts BundleOptions) (*Bundle, error) {
	if opts.CounterHistogramPairs == nil {
		opts.CounterHistogramPairs = bundleCounterPairs()
	}
	var health json.RawMessage
	if db != nil {
		hr, err := db.IndexHealth(ctx, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("tsq: bundle index health: %w", err)
		}
		health, err = json.Marshal(hr)
		if err != nil {
			return nil, fmt.Errorf("tsq: bundle index health: %w", err)
		}
	}
	b := obs.NewBundle(obs.Default, statsSampler.Load(), flightRecorder.Load(),
		queryLogger.Load(), captureWriter.Load(), health, opts, DefaultRateWindows...)
	return b, nil
}

// WriteBundle collects a support bundle (see CollectBundle) and writes
// it to w as indented JSON.
func WriteBundle(ctx context.Context, w io.Writer, db *DB, opts BundleOptions) error {
	b, err := CollectBundle(ctx, db, opts)
	if err != nil {
		return err
	}
	return b.WriteJSON(w)
}

// BundleHandler serves a support bundle — the /debug/bundle endpoint.
// Profiles are opt-in per request: ?cpu=2s collects a CPU profile of
// that duration (the request blocks for it), ?heap=1 a heap profile.
func BundleHandler(db *DB) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var opts BundleOptions
		if v := req.URL.Query().Get("cpu"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 || d > time.Minute {
				http.Error(w, "cpu must be a duration up to 1m", http.StatusBadRequest)
				return
			}
			opts.CPUProfile = d
		}
		if req.URL.Query().Get("heap") != "" {
			opts.HeapProfile = true
		}
		b, err := CollectBundle(req.Context(), db, opts)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = b.WriteJSON(w)
	})
}

// The storage layer's process-wide I/O counters, mirrored into the
// default registry as function-backed counters: sampled only at
// snapshot time, so the mirroring itself costs nothing per query. With
// these the sampler can derive buffer hit ratio and page-read rates
// over its windows. Runtime health gauges (heap, goroutines, GC) ride
// the same mechanism, and the latency histograms get exemplar slots so
// /metrics buckets link back to query ids.
func init() {
	obs.Default.CounterFunc("tsq_pages_read_total", func() int64 { return storage.GlobalStats().Reads })
	obs.Default.CounterFunc("tsq_buffer_hits_total", func() int64 { return storage.GlobalStats().Hits })
	obs.Default.CounterFunc("tsq_pages_written_total", func() int64 { return storage.GlobalStats().Writes })
	obs.Default.CounterFunc("tsq_pages_prefetched_total", func() int64 { return storage.GlobalStats().Prefetched })
	obs.Default.CounterFunc("tsq_io_errors_total", func() int64 { return storage.GlobalStats().IOErrors })
	obs.Default.CounterFunc("tsq_checksum_failures_total", func() int64 { return storage.GlobalStats().ChecksumFailures })
	obs.Default.CounterFunc("tsq_wal_records_total", func() int64 { return wal.GlobalStats().Records })
	obs.Default.CounterFunc("tsq_wal_replayed_total", wal.GlobalReplayed)
	obs.Default.CounterFunc("tsq_wal_fsyncs_total", func() int64 { return wal.GlobalStats().Fsyncs })
	obs.Default.CounterFunc("tsq_wal_group_commits_total", func() int64 { return wal.GlobalStats().GroupCommits })
	obs.Default.CounterFunc("tsq_wal_checkpoints_total", func() int64 { return wal.GlobalStats().Checkpoints })
	obs.RegisterRuntimeMetrics(obs.Default)
	mRangeLatency.EnableExemplars()
	mNNLatency.EnableExemplars()
}
