// Aggregate observability: index health reports, the slow-query flight
// recorder, and the windowed stats sampler. The recorder and sampler
// are process-wide (like the default metrics registry) and disabled by
// default; when disabled the query hot path pays exactly one atomic
// pointer load and zero allocations (pinned by benchmark).

package tsq

import (
	"context"
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"

	"tsq/internal/core"
	"tsq/internal/obs"
	"tsq/internal/storage"
)

// HealthReport is an index health analysis; see DB.IndexHealth.
type HealthReport = core.HealthReport

// GroupHealth is the per-transformation-group section of a HealthReport.
type GroupHealth = core.GroupHealth

// QueryRecord is one query retained by the flight recorder.
type QueryRecord = obs.QueryRecord

// RecorderSnapshot is the drained state of the flight recorder.
type RecorderSnapshot = obs.RecorderSnapshot

// RecorderOptions configures the flight recorder; zero values pick
// defaults (128 slow slots, 64 sampled, 10ms threshold).
type RecorderOptions = obs.RecorderOptions

// SamplerOptions configures the stats sampler; zero values pick
// defaults (1s interval, 300 snapshots retained).
type SamplerOptions = obs.SamplerOptions

// WindowStats is one sliding window of derived rates; see RatesHandler.
type WindowStats = obs.WindowStats

// IndexHealth walks the DB's index read-only and reports its structural
// health: R*-tree per-level occupancy/margin/overlap/dead space, heap
// file liveness and utilization, storage counters, and — when ts is
// non-empty — per-transformation-group rectangle volumes (groups nil
// profiles all of ts as one group). Fold traced queries into the
// report's group counters with HealthReport.FoldTrace.
func (db *DB) IndexHealth(ctx context.Context, ts []Transform, groups [][]int) (*HealthReport, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.ix.Health(ctx, ts, groups)
}

// QueryGroups resolves the transformation partition a range query with
// these options would use (nil when the whole set forms one group) —
// pass it to IndexHealth to profile the same groups queries run with.
func (db *DB) QueryGroups(ts []Transform, opts QueryOptions) [][]int {
	return db.rangeOpts(ts, opts).Groups
}

// IndexHandler serves db's health report — the `-debug-addr` /index
// endpoint. JSON by default, the -inspect text report with
// ?format=text; ts/groups select the transformation groups profiled.
// The walk reads every index page, so each request is a full (buffered)
// index scan — an operator action, not a scrape target.
func IndexHandler(db *DB, ts []Transform, groups [][]int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		hr, err := db.IndexHealth(req.Context(), ts, groups)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			hr.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(hr)
	})
}

// flightRecorder and statsSampler are the process-wide instances; nil
// means disabled. One atomic load on the query path decides.
var (
	flightRecorder atomic.Pointer[obs.Recorder]
	statsSampler   atomic.Pointer[obs.Sampler]
)

// EnableFlightRecorder installs a process-wide slow-query flight
// recorder and returns it. Completed Range and NearestNeighbors queries
// above opts.Threshold are retained in a fixed ring; queries below it
// are reservoir-sampled. A recorder already installed is replaced (its
// contents are dropped).
func EnableFlightRecorder(opts RecorderOptions) *obs.Recorder {
	rec := obs.NewRecorder(opts)
	flightRecorder.Store(rec)
	return rec
}

// DisableFlightRecorder removes the process-wide recorder; the query
// path reverts to a single nil-pointer check.
func DisableFlightRecorder() { flightRecorder.Store(nil) }

// FlightRecorderSnapshot drains the current recorder contents; the zero
// snapshot when no recorder is installed.
func FlightRecorderSnapshot() RecorderSnapshot { return flightRecorder.Load().Snapshot() }

// QueriesHandler serves the flight recorder contents as JSON — the
// `-debug-addr` /queries endpoint. 503 while no recorder is installed.
func QueriesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		rec := flightRecorder.Load()
		if rec == nil {
			http.Error(w, "flight recorder not enabled", http.StatusServiceUnavailable)
			return
		}
		rec.Handler().ServeHTTP(w, req)
	})
}

// StartSampler launches the process-wide windowed stats sampler over
// the default metrics registry (plus the function-backed storage
// counters) and returns it. A sampler already running is stopped and
// replaced.
func StartSampler(opts SamplerOptions) *obs.Sampler {
	s := obs.NewSampler(obs.Default, opts)
	if old := statsSampler.Swap(s); old != nil {
		old.Stop()
	}
	s.Start()
	return s
}

// StopSampler stops and removes the process-wide sampler.
func StopSampler() {
	if old := statsSampler.Swap(nil); old != nil {
		old.Stop()
	}
}

// DefaultRateWindows are the spans RatesHandler reports.
var DefaultRateWindows = []time.Duration{10 * time.Second, time.Minute, 5 * time.Minute}

// RatesHandler serves windowed rates (QPS, page-read and buffer-hit
// rates, windowed latency quantiles) as JSON — the `-debug-addr`
// /rates endpoint. 503 while no sampler is running.
func RatesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s := statsSampler.Load()
		if s == nil {
			http.Error(w, "stats sampler not running", http.StatusServiceUnavailable)
			return
		}
		s.Handler(DefaultRateWindows...).ServeHTTP(w, req)
	})
}

// The storage layer's process-wide I/O counters, mirrored into the
// default registry as function-backed counters: sampled only at
// snapshot time, so the mirroring itself costs nothing per query. With
// these the sampler can derive buffer hit ratio and page-read rates
// over its windows.
func init() {
	obs.Default.CounterFunc("tsq_pages_read_total", func() int64 { return storage.GlobalStats().Reads })
	obs.Default.CounterFunc("tsq_buffer_hits_total", func() int64 { return storage.GlobalStats().Hits })
	obs.Default.CounterFunc("tsq_pages_written_total", func() int64 { return storage.GlobalStats().Writes })
	obs.Default.CounterFunc("tsq_pages_prefetched_total", func() int64 { return storage.GlobalStats().Prefetched })
	obs.Default.CounterFunc("tsq_io_errors_total", func() int64 { return storage.GlobalStats().IOErrors })
	obs.Default.CounterFunc("tsq_checksum_failures_total", func() int64 { return storage.GlobalStats().ChecksumFailures })
}
