// Package tsq implements similarity-based queries for time series data
// under sets of linear transformations, after Rafiei, "On Similarity-Based
// Queries for Time Series Data" (ICDE 1999).
//
// A time series is stored in normal form (mean 0, std 1) together with its
// Fourier spectrum; similarity between two series is the Euclidean
// distance after both are mapped by the same linear transformation over
// the Fourier representation — moving averages, momentum, time shifts,
// scaling and inversion are all expressible this way. A query supplies a
// whole set of transformations ("any moving average from 5 to 34 days")
// and asks for every (series, transformation) pair within a threshold.
//
// Three query algorithms are provided: sequential scan, ST-index (one
// R*-tree traversal per transformation) and MT-index (the paper's
// contribution: the minimum bounding rectangle of all transformations is
// applied to the index rectangles on the fly, so one traversal serves the
// whole set). Thresholds may be given as distances or cross-correlations
// (they are interchangeable on normal forms), joins and nearest-neighbor
// queries take the same transformation sets, and transformation pipelines
// ("shift(0..10) | mv(1..40)") are rewritten into flat sets by
// composition.
//
// Basic use:
//
//	db, _ := tsq.Open(seriesList, names, tsq.Options{})
//	ts := tsq.MovingAverages(db.SeriesLength(), 5, 34)
//	matches, stats, _ := db.Range(querySeries, ts,
//	    tsq.Correlation(0.96), tsq.QueryOptions{})
package tsq

import (
	"context"
	"fmt"
	"net/http"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"tsq/internal/core"
	"tsq/internal/obs"
	"tsq/internal/query"
	"tsq/internal/series"
	"tsq/internal/storage"
	"tsq/internal/transform"
)

// Series is a time series: one float64 per time point.
type Series = series.Series

// Transform is a linear transformation over the polar Fourier
// representation of a series.
type Transform = transform.Transform

// Match is a range-query answer: a record and a transformation index
// bringing it within the threshold of the query.
type Match = core.Match

// JoinMatch is a join answer: a pair of records and a transformation.
type JoinMatch = core.JoinMatch

// NNMatch is a nearest-neighbor answer.
type NNMatch = core.NNMatch

// RawMatch is a whole-matching answer on the original series.
type RawMatch = core.RawMatch

// Stats reports the work performed by a query in the units of the paper's
// cost model: disk accesses (all levels and leaf level), candidates,
// full-record comparisons, and index traversals.
type Stats = core.QueryStats

// Trace collects the spans of a traced query; see NewTrace. Render with
// its String method (an EXPLAIN ANALYZE-style tree) or marshal it to
// JSON.
type Trace = obs.Trace

// NewTrace returns an empty query trace. Attach it to a context with
// WithTrace and pass that context to RangeCtx, NearestNeighborsCtx or
// Batch; every query evaluated under the context records its span tree
// (per-phase wall time, index-node visits, page I/O, candidate and
// false-positive counts) into the trace. Tracing is opt-in: without a
// trace in the context, the query engine's instrumentation is a nil
// fast path that performs no allocations.
func NewTrace() *Trace { return obs.New() }

// WithTrace attaches a query trace to ctx.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return obs.WithTrace(ctx, tr)
}

// Metrics is the package's default metrics registry: query counters and
// latency histograms every DB updates. Snapshot it, render it with
// WriteText/WriteJSON, or serve it with MetricsHandler.
func Metrics() *obs.Registry { return obs.Default }

// MetricsHandler serves the default metrics registry over HTTP as JSON
// (append ?format=text for a flat text listing) — an expvar-style
// endpoint for dashboards and scrapers.
func MetricsHandler() http.Handler { return obs.Default.Handler() }

// Default-registry instruments, shared by all DBs in the process.
var (
	mRangeQueries = obs.Default.Counter("tsq_range_queries_total")
	mNNQueries    = obs.Default.Counter("tsq_nn_queries_total")
	mJoinQueries  = obs.Default.Counter("tsq_join_queries_total")
	mBatchQueries = obs.Default.Counter("tsq_batch_queries_total")
	mRangeLatency = obs.Default.Histogram("tsq_range_latency_ns", obs.DurationBuckets())
	mNNLatency    = obs.Default.Histogram("tsq_nn_latency_ns", obs.DurationBuckets())
)

// Pipeline is a sequence of transformation-set steps applied in order;
// Flatten rewrites it to a single set by composition.
type Pipeline = query.Pipeline

// Threshold is a similarity threshold, given as a Euclidean distance on
// normal forms or as a cross-correlation.
type Threshold = query.Threshold

// Distance returns a threshold fixed in Euclidean distance on normal
// forms.
func Distance(d float64) Threshold { return query.DistanceThreshold(d) }

// Correlation returns a threshold fixed as a minimum cross-correlation.
func Correlation(rho float64) Threshold { return query.CorrelationThreshold(rho) }

// Algorithm selects a query processing strategy.
type Algorithm int

const (
	// MTIndex applies the transformation MBR to the index on the fly:
	// one traversal per transformation rectangle (the paper's Algorithm 1).
	MTIndex Algorithm = iota
	// STIndex traverses the index once per transformation.
	STIndex
	// SeqScan scans the whole relation.
	SeqScan
	// Auto lets a cost-based planner choose between the three: it probes
	// the index with a few filter-only traversals, estimates each plan
	// with the paper's Eq. 18/20 model, and runs the cheapest (including
	// the choice of transformation packing for MT-index). Use Explain to
	// see the decision.
	Auto
)

// String returns the algorithm's conventional name.
func (a Algorithm) String() string {
	switch a {
	case MTIndex:
		return "MT-index"
	case STIndex:
		return "ST-index"
	case SeqScan:
		return "sequential-scan"
	case Auto:
		return "auto"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures Open. The zero value is the paper's configuration:
// two indexed DFT coefficients (a 6-dimensional index with the mean and
// std dimensions), 4 KiB pages, no buffer pool, symmetry property on.
type Options struct {
	// K is the number of DFT coefficients indexed; default 2.
	K int
	// PageSize is the index page size in bytes; default 4096.
	PageSize int
	// BufferPages enables an LRU buffer pool of that many pages; with 0
	// every node fetch counts as one disk access (the paper's convention).
	BufferPages int
	// DisableSymmetry turns off the DFT symmetry property (Eq. 6), which
	// normally shrinks per-coefficient search bounds by sqrt(2). Only
	// sound to rely on with the built-in transformations (they act
	// symmetrically on mirror coefficients); exposed for ablation.
	DisableSymmetry bool
	// DisableChecksums writes file-backed databases without per-page
	// CRC32C trailers, producing the pre-checksum file format. New files
	// are checksummed by default; files created either way reopen
	// transparently (the format is flagged in the file header).
	DisableChecksums bool
	// BulkLoad builds the index with Sort-Tile-Recursive packing instead
	// of repeated insertion: faster builds, near-full nodes, fewer disk
	// accesses per query. The index remains fully updatable.
	BulkLoad bool
	// Shards partitions the database into that many independent shards
	// (deterministic hash over series ids), each with its own R*-tree,
	// heap file and buffer pool, built in parallel and queried
	// scatter-gather. 0 or 1 keeps the classic single-tree engine;
	// answers are identical at every shard count.
	Shards int
}

// QueryOptions tunes an individual query.
type QueryOptions struct {
	// Algorithm defaults to MTIndex.
	Algorithm Algorithm
	// TransformsPerMBR splits the transformation set into contiguous
	// rectangles of this size (Sec. 4.3); 0 packs everything into one
	// rectangle. Ignored by SeqScan and STIndex.
	TransformsPerMBR int
	// ClusterPartition first separates the transformation set into
	// clusters (CURE) so no rectangle spans a gap, then applies
	// TransformsPerMBR within each cluster. Ignored by SeqScan/STIndex.
	ClusterPartition bool
	// UseOrdering enables the Sec. 4.4 binary search for orderable
	// (pure scale) transformation sets.
	UseOrdering bool
	// PaperQueryRect uses the paper's plain eps-box query rectangle
	// instead of the provably-safe construction (see core.QRectMode).
	PaperQueryRect bool
	// OneSided switches the predicate to the literal Algorithm-1 form
	// D(t(s), q): the transformation applies to the stored series only.
	// This is the semantics under which alignment transformations such as
	// time shifts are meaningful — applied to both sides they are unitary
	// and cancel. Implied by QueryTransform.
	OneSided bool
	// QueryTransform, when set, is applied once to the (normalized) query
	// before comparison, so the predicate is D(t(s), QueryTransform(q)).
	// Example 1.2's "compare momenta, allowing a shift of s days" is
	// QueryTransform = Momentum(n) with ts = shifts composed on momentum.
	// Setting it implies OneSided.
	QueryTransform *Transform
	// Workers, when above 1, shards the sequential scan and the index
	// algorithms' candidate-verification phase across that many
	// goroutines. Answers are identical to serial evaluation.
	Workers int
	// NaiveVerify disables the I/O-aware candidate pipeline (DFT-prefix
	// lower-bound skipping, page-ordered batched fetch, early-abandoning
	// distance kernels) and verifies record-at-a-time, as the paper's
	// cost model assumes. Answers are identical either way; only the
	// I/O and comparison effort differs. The paper-figure harness sets
	// this so the Eq. 18/20 disk-access curves replicate exactly.
	NaiveVerify bool
	// FlatLB keeps the candidate pipeline but evaluates the DFT-prefix
	// lower bound in its original flat, single-tier form instead of the
	// tiered cascade (see Stats.SkippedLB0/1/2). Answers are identical;
	// the flag exists to A/B the cascade's per-candidate cost in
	// benchmarks such as tsbench -verify-sweep.
	FlatLB bool
}

// DB is an indexed collection of equal-length time series. Queries may
// run concurrently with each other; Insert, Delete and Close are
// exclusive.
type DB struct {
	mu sync.RWMutex
	ds *core.Dataset
	ix *core.Sharded
}

// Open normalizes and indexes the given series. Names may be nil.
func Open(ss []Series, names []string, opts Options) (*DB, error) {
	ds, err := core.NewDataset(ss, names)
	if err != nil {
		return nil, err
	}
	ix, err := core.BuildSharded(ds, opts.Shards, core.IndexOptions{
		K:           opts.K,
		PageSize:    opts.PageSize,
		BufferPages: opts.BufferPages,
		UseSymmetry: !opts.DisableSymmetry,
		BulkLoad:    opts.BulkLoad,
	})
	if err != nil {
		return nil, err
	}
	return &DB{ds: ds, ix: ix}, nil
}

// Shards returns the shard count of the database (1 when unsharded).
func (db *DB) Shards() int { return db.ix.ShardCount() }

// Len returns the number of stored series.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.ds.Records)
}

// SeriesLength returns the common series length.
func (db *DB) SeriesLength() int { return db.ds.N }

// Name returns the name of series id, or "" if unknown.
func (db *DB) Name(id int64) string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if r := db.ds.Record(id); r != nil {
		return r.Name
	}
	return ""
}

// Get returns a copy of the original series with the given id, or nil.
func (db *DB) Get(id int64) Series {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if r := db.ds.Record(id); r != nil {
		return r.Raw.Clone()
	}
	return nil
}

// NormalForm returns a copy of the normal form of series id, or nil.
func (db *DB) NormalForm(id int64) Series {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if r := db.ds.Record(id); r != nil {
		return r.Norm.Clone()
	}
	return nil
}

// Info describes the database: series count and length, index geometry
// and storage footprint.
type Info struct {
	Series       int
	SeriesLength int
	IndexedK     int
	TreeHeight   int
	Pages        int
	PageSize     int
	LeafCapacity float64
	Paged        bool
	Shards       int
}

// Info returns a snapshot of the database's shape.
func (db *DB) Info() (Info, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ca, err := db.ix.AvgLeafCapacity()
	if err != nil {
		return Info{}, err
	}
	return Info{
		Series:       len(db.ds.Records),
		SeriesLength: db.ds.N,
		IndexedK:     db.ix.Options().K,
		TreeHeight:   db.ix.Height(),
		Pages:        db.ix.NumPages(),
		PageSize:     db.ix.PageSize(),
		LeafCapacity: ca,
		Paged:        db.ix.Paged(),
		Shards:       db.ix.ShardCount(),
	}, nil
}

// LevelSummary describes one level of the index tree.
type LevelSummary struct {
	Level   int // 1 = leaves
	Nodes   int
	AvgSide []float64
}

// TreeLevels returns per-level statistics of the index tree.
func (db *DB) TreeLevels() ([]LevelSummary, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	stats, _, err := db.ix.TreeStats()
	if err != nil {
		return nil, err
	}
	out := make([]LevelSummary, len(stats))
	for i, s := range stats {
		out[i] = LevelSummary{Level: s.Level, Nodes: s.Nodes, AvgSide: s.AvgSide}
	}
	return out, nil
}

// Verify runs a full integrity check: tree invariants, index/record
// agreement, and (for paged databases) record-page consistency. It is
// the equivalent of a database integrity pragma; expect it to read
// everything.
func (db *DB) Verify() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.ix.Verify()
}

// DiskStats returns the cumulative storage counters of the index.
func (db *DB) DiskStats() storage.Stats { return db.ix.DiskStats() }

// ResetDiskStats zeroes the storage counters.
func (db *DB) ResetDiskStats() { db.ix.ResetDiskStats() }

// rangeOpts resolves QueryOptions into core options for the given set.
func (db *DB) rangeOpts(ts []Transform, opts QueryOptions) core.RangeOptions {
	ro := core.RangeOptions{
		UseOrdering: opts.UseOrdering,
		OneSided:    opts.OneSided || opts.QueryTransform != nil,
		Workers:     opts.Workers,
		NaiveVerify: opts.NaiveVerify,
		FlatLB:      opts.FlatLB,
	}
	if opts.PaperQueryRect {
		ro.Mode = core.QRectPaper
	}
	per := opts.TransformsPerMBR
	switch {
	case opts.ClusterPartition:
		if per <= 0 {
			per = len(ts)
		}
		ro.Groups = db.ix.ClusterThenEqualPartition(ts, per, 0)
	case per > 0:
		ro.Groups = core.EqualPartition(len(ts), per)
	}
	return ro
}

// Range answers Query 1: every stored series s and transformation t in ts
// with D(t(s), t(q)) within the threshold, distances measured on normal
// forms.
func (db *DB) Range(q Series, ts []Transform, thr Threshold, opts QueryOptions) ([]Match, Stats, error) {
	return db.RangeCtx(nil, q, ts, thr, opts)
}

// RangeCtx is Range under a context: attach a trace with WithTrace to
// record the query's span tree (EXPLAIN ANALYZE); without one the query
// runs the untraced fast path. The context does not cancel the query.
func (db *DB) RangeCtx(ctx context.Context, q Series, ts []Transform, thr Threshold, opts QueryOptions) ([]Match, Stats, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	qr, err := db.ds.QueryRecord(q)
	if err != nil {
		return nil, Stats{}, err
	}
	return db.rangeRecord(ctx, qr, ts, thr, opts)
}

// RangeByID runs Range with a stored series as the query point.
func (db *DB) RangeByID(id int64, ts []Transform, thr Threshold, opts QueryOptions) ([]Match, Stats, error) {
	return db.RangeByIDCtx(nil, id, ts, thr, opts)
}

// RangeByIDCtx is RangeByID under a context; see RangeCtx.
func (db *DB) RangeByIDCtx(ctx context.Context, id int64, ts []Transform, thr Threshold, opts QueryOptions) ([]Match, Stats, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r := db.ds.Record(id)
	if r == nil {
		return nil, Stats{}, fmt.Errorf("tsq: no series with id %d", id)
	}
	return db.rangeRecord(ctx, r, ts, thr, opts)
}

// rangeRecord opens the root span (when ctx carries a trace), dispatches
// to the chosen algorithm and records the query metrics. Every disabled
// diagnostics feature costs one atomic load here (pinned by the
// zero-alloc test); the attributed path lives in its own method so its
// closure never forces this function's locals onto the heap.
func (db *DB) rangeRecord(ctx context.Context, qr *core.Record, ts []Transform, thr Threshold, opts QueryOptions) ([]Match, Stats, error) {
	start := time.Now()
	qid := obs.NextQueryID()
	var root *obs.Span
	if tr := obs.FromContext(ctx); tr != nil {
		root = tr.Start(obs.KindQuery, fmt.Sprintf("range %s (%d transforms)", opts.Algorithm, len(ts)))
		ctx = obs.ContextWithSpan(ctx, root)
	}
	ql := queryLogger.Load()
	cw := captureWriter.Load()
	var ioPre storage.Stats
	if ql != nil || cw != nil {
		ioPre = storage.GlobalStats()
	}
	var m []Match
	var st Stats
	var err error
	if obs.AttributionEnabled() {
		m, st, err = db.rangeAttributed(ctx, qid, qr, ts, thr, opts, root)
	} else {
		m, st, err = db.rangeDispatch(ctx, qr, ts, thr, opts)
	}
	if root != nil {
		root.Set(obs.AMatches, int64(len(m)))
		root.Set(obs.ACandidates, int64(st.Candidates))
		root.Set(obs.ATransforms, int64(len(ts)))
		root.EndErr(err)
	}
	mRangeQueries.Inc()
	dur := time.Since(start)
	mRangeLatency.ObserveDurationExemplar(dur, qid)
	if rec := flightRecorder.Load(); rec != nil {
		rec.Record("range", opts.Algorithm.String(), qid, dur, err, obs.FromContext(ctx))
	}
	if ql != nil || cw != nil {
		ioPost := storage.GlobalStats()
		if cw != nil {
			captureRange(cw, qid, qr, ts, thr.Epsilon(db.ds.N), opts, m, st, dur, err, ioPre, ioPost)
		}
		if ql != nil {
			ql.Log(obs.QueryLogRecord{
				QueryID:         qid,
				Kind:            "range",
				Label:           opts.Algorithm.String(),
				Transforms:      len(ts),
				Eps:             thr.Epsilon(db.ds.N),
				Duration:        dur,
				Err:             err,
				Matches:         int64(len(m)),
				Candidates:      int64(st.Candidates),
				SkippedLB:       int64(st.SkippedLB),
				SkippedLB0:      int64(st.SkippedLB0),
				SkippedLB1:      int64(st.SkippedLB1),
				SkippedLB2:      int64(st.SkippedLB2),
				Abandoned:       int64(st.Abandoned),
				Comparisons:     int64(st.Comparisons),
				PagesRead:       ioPost.Reads - ioPre.Reads,
				PagesPrefetched: ioPost.Prefetched - ioPre.Prefetched,
				BufferHits:      ioPost.Hits - ioPre.Hits,
				Resources: obs.Resources{
					AllocBytes: st.AllocBytes,
					Mallocs:    st.Mallocs,
					GCCycles:   st.GCCycles,
					GCPauseNs:  st.GCPauseNs,
				},
				Trace: obs.FromContext(ctx),
			})
		}
	}
	return m, st, err
}

// rangeAttributed runs the dispatch under resource attribution: the
// goroutine (and any workers it spawns) carries pprof labels naming the
// query shape, and the process resource delta around the dispatch is
// booked into the stats and the root span. Only called with attribution
// enabled, so its label and closure allocations never touch the fast
// path.
func (db *DB) rangeAttributed(ctx context.Context, qid uint64, qr *core.Record, ts []Transform, thr Threshold, opts QueryOptions, root *obs.Span) (m []Match, st Stats, err error) {
	pre := obs.ReadResources()
	if ctx == nil {
		ctx = context.Background()
	}
	pprof.Do(ctx, pprof.Labels(
		"tsq_query", "range",
		"tsq_algo", opts.Algorithm.String(),
		"tsq_qid", strconv.FormatUint(qid, 10),
	), func(lctx context.Context) {
		m, st, err = db.rangeDispatch(lctx, qr, ts, thr, opts)
	})
	res := obs.ReadResources().Sub(pre)
	st.AllocBytes = res.AllocBytes
	st.Mallocs = res.Mallocs
	st.GCCycles = res.GCCycles
	st.GCPauseNs = res.GCPauseNs
	if root != nil {
		root.Set(obs.AAllocBytes, res.AllocBytes)
		root.Set(obs.AMallocs, res.Mallocs)
		root.Set(obs.AGCCycles, res.GCCycles)
		root.Set(obs.AGCPauseNs, res.GCPauseNs)
	}
	return m, st, err
}

func (db *DB) rangeDispatch(ctx context.Context, qr *core.Record, ts []Transform, thr Threshold, opts QueryOptions) ([]Match, Stats, error) {
	eps := thr.Epsilon(db.ds.N)
	if opts.QueryTransform != nil {
		qr = qr.ApplyTransform(*opts.QueryTransform)
	}
	if opts.Algorithm == Auto {
		mode := core.QRectSafe
		if opts.PaperQueryRect {
			mode = core.QRectPaper
		}
		plan, err := db.ix.PlanRangeCtx(ctx, qr, ts, eps, mode, core.DefaultCostParams())
		if err != nil {
			return nil, Stats{}, err
		}
		switch plan.Kind {
		case core.PlanSeqScan:
			opts.Algorithm = SeqScan
		case core.PlanSTIndex:
			opts.Algorithm = STIndex
		default:
			opts.Algorithm = MTIndex
			ro := db.rangeOpts(ts, opts)
			ro.Groups = plan.Groups
			return db.ix.MTIndexRangeCtx(ctx, qr, ts, eps, ro)
		}
	}
	switch opts.Algorithm {
	case SeqScan:
		m, st := core.SeqScanRangeCtx(ctx, db.ds, qr, ts, eps, db.rangeOpts(ts, opts))
		return m, st, nil
	case STIndex:
		return db.ix.STIndexRangeCtx(ctx, qr, ts, eps, db.rangeOpts(ts, opts))
	case MTIndex:
		return db.ix.MTIndexRangeCtx(ctx, qr, ts, eps, db.rangeOpts(ts, opts))
	default:
		return nil, Stats{}, fmt.Errorf("tsq: unknown algorithm %v", opts.Algorithm)
	}
}

// BatchRequest is one query of a Batch call.
type BatchRequest struct {
	// Query is an ad-hoc query series; ignored when ByID is set.
	Query Series
	// ID selects a stored series as the query point when ByID is true.
	ID   int64
	ByID bool
	// Transforms is the transformation set of the query.
	Transforms []Transform
	// Threshold bounds range queries; ignored when K > 0.
	Threshold Threshold
	// K, when positive, asks for the K nearest neighbors instead of a
	// range answer.
	K int
	// Opts tunes the query. Algorithm Auto is evaluated as MTIndex (the
	// per-query planner probes the index serially and would negate the
	// batching); the other algorithms behave as in Range.
	Opts QueryOptions
}

// BatchResult is the outcome of one Batch query: Matches for range
// queries, NN for nearest-neighbor queries.
type BatchResult struct {
	Matches []Match
	NN      []NNMatch
	Stats   Stats
	Err     error
}

// Batch evaluates many queries concurrently over the shared index with a
// pool of the given number of worker goroutines (0 means GOMAXPROCS) and
// returns one result per request, in order. Each result is identical to
// running the query alone; the spectral features of equal ad-hoc query
// series are computed once per batch. Cancelling ctx fails queries not
// yet started with ctx.Err(). Batch holds the database's read lock for
// the duration, so it may run concurrently with other queries but
// excludes Insert and Delete.
func (db *DB) Batch(ctx context.Context, reqs []BatchRequest, workers int) []BatchResult {
	db.mu.RLock()
	defer db.mu.RUnlock()
	results := make([]BatchResult, len(reqs))
	execReqs := make([]core.ExecRequest, 0, len(reqs))
	idx := make([]int, 0, len(reqs))
	for i, r := range reqs {
		er := core.ExecRequest{
			Transforms:     r.Transforms,
			K:              r.K,
			QueryTransform: r.Opts.QueryTransform,
			SeqScan:        r.Opts.Algorithm == SeqScan,
		}
		if r.ByID {
			rec := db.ds.Record(r.ID)
			if rec == nil {
				results[i].Err = fmt.Errorf("tsq: no series with id %d", r.ID)
				continue
			}
			er.Record = rec
		} else {
			er.Query = r.Query
		}
		if r.K <= 0 {
			er.Eps = r.Threshold.Epsilon(db.ds.N)
		}
		er.Opts = db.rangeOpts(r.Transforms, r.Opts)
		if r.Opts.Algorithm == STIndex {
			groups := make([][]int, len(r.Transforms))
			for t := range r.Transforms {
				groups[t] = []int{t}
			}
			er.Opts.Groups = groups
		}
		execReqs = append(execReqs, er)
		idx = append(idx, i)
	}
	exec := core.NewExecutor(db.ix, workers)
	mBatchQueries.Add(int64(len(execReqs)))
	for j, res := range exec.Run(ctx, execReqs) {
		results[idx[j]] = BatchResult{Matches: res.Matches, NN: res.NN, Stats: res.Stats, Err: res.Err}
	}
	return results
}

// Join answers Query 2: every pair of stored series and transformation
// within the threshold.
func (db *DB) Join(ts []Transform, thr Threshold, opts QueryOptions) ([]JoinMatch, Stats, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	mJoinQueries.Inc()
	eps := thr.Epsilon(db.ds.N)
	switch opts.Algorithm {
	case SeqScan:
		m, st := core.SeqScanJoin(db.ds, ts, eps)
		return m, st, nil
	case STIndex:
		return db.ix.STIndexJoin(ts, eps, db.rangeOpts(ts, opts))
	case MTIndex:
		return db.ix.MTIndexJoin(ts, eps, db.rangeOpts(ts, opts))
	default:
		return nil, Stats{}, fmt.Errorf("tsq: unknown algorithm %v", opts.Algorithm)
	}
}

// ClosestPairs returns the k pairs of stored series with the smallest
// best transformed distance — the incremental top-k form of Query 2
// ("the k most correlated pairs under some moving average"). The index
// algorithm is exact and prunes with a provable lower bound; SeqScan
// evaluates every pair.
func (db *DB) ClosestPairs(ts []Transform, k int, alg Algorithm) ([]JoinMatch, Stats, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	switch alg {
	case SeqScan:
		m, st := core.SeqScanClosestPairs(db.ds, ts, k)
		return m, st, nil
	case MTIndex, STIndex, Auto:
		return db.ix.MTIndexClosestPairs(ts, k)
	default:
		return nil, Stats{}, fmt.Errorf("tsq: unknown algorithm %v", alg)
	}
}

// NearestNeighbors returns the k stored series with the smallest best
// transformed distance to q, with the minimizing transformation for each.
// Only the Algorithm, OneSided and QueryTransform options apply.
func (db *DB) NearestNeighbors(q Series, ts []Transform, k int, opts QueryOptions) ([]NNMatch, Stats, error) {
	return db.NearestNeighborsCtx(nil, q, ts, k, opts)
}

// NearestNeighborsCtx is NearestNeighbors under a context; attach a
// trace with WithTrace to record the traversal's span tree.
func (db *DB) NearestNeighborsCtx(ctx context.Context, q Series, ts []Transform, k int, opts QueryOptions) ([]NNMatch, Stats, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	start := time.Now()
	qid := obs.NextQueryID()
	qr, err := db.ds.QueryRecord(q)
	if err != nil {
		return nil, Stats{}, err
	}
	if opts.QueryTransform != nil {
		qr = qr.ApplyTransform(*opts.QueryTransform)
	}
	var root *obs.Span
	if tr := obs.FromContext(ctx); tr != nil {
		root = tr.Start(obs.KindQuery, fmt.Sprintf("nn %s (k=%d)", opts.Algorithm, k))
		ctx = obs.ContextWithSpan(ctx, root)
	}
	oneSided := opts.OneSided || opts.QueryTransform != nil
	ql := queryLogger.Load()
	cw := captureWriter.Load()
	var ioPre storage.Stats
	if ql != nil || cw != nil {
		ioPre = storage.GlobalStats()
	}
	var m []NNMatch
	var st Stats
	if obs.AttributionEnabled() {
		m, st, err = db.nnAttributed(ctx, qid, qr, ts, k, oneSided, opts.Algorithm, root)
	} else {
		m, st, err = db.nnDispatch(ctx, qr, ts, k, oneSided, opts.Algorithm)
	}
	if root != nil {
		root.Set(obs.AMatches, int64(len(m)))
		root.Set(obs.ACandidates, int64(st.Candidates))
		root.EndErr(err)
	}
	mNNQueries.Inc()
	dur := time.Since(start)
	mNNLatency.ObserveDurationExemplar(dur, qid)
	if rec := flightRecorder.Load(); rec != nil {
		rec.Record("nn", opts.Algorithm.String(), qid, dur, err, obs.FromContext(ctx))
	}
	if ql != nil || cw != nil {
		ioPost := storage.GlobalStats()
		if cw != nil {
			captureNN(cw, qid, qr, ts, k, opts, m, st, dur, err, ioPre, ioPost)
		}
		if ql != nil {
			ql.Log(obs.QueryLogRecord{
				QueryID:         qid,
				Kind:            "nn",
				Label:           opts.Algorithm.String(),
				Transforms:      len(ts),
				K:               k,
				Duration:        dur,
				Err:             err,
				Matches:         int64(len(m)),
				Candidates:      int64(st.Candidates),
				SkippedLB:       int64(st.SkippedLB),
				SkippedLB0:      int64(st.SkippedLB0),
				SkippedLB1:      int64(st.SkippedLB1),
				SkippedLB2:      int64(st.SkippedLB2),
				Abandoned:       int64(st.Abandoned),
				Comparisons:     int64(st.Comparisons),
				PagesRead:       ioPost.Reads - ioPre.Reads,
				PagesPrefetched: ioPost.Prefetched - ioPre.Prefetched,
				BufferHits:      ioPost.Hits - ioPre.Hits,
				Resources: obs.Resources{
					AllocBytes: st.AllocBytes,
					Mallocs:    st.Mallocs,
					GCCycles:   st.GCCycles,
					GCPauseNs:  st.GCPauseNs,
				},
				Trace: obs.FromContext(ctx),
			})
		}
	}
	if err != nil {
		return nil, st, err
	}
	return m, st, nil
}

// nnDispatch runs the nearest-neighbor algorithm switch.
func (db *DB) nnDispatch(ctx context.Context, qr *core.Record, ts []Transform, k int, oneSided bool, alg Algorithm) ([]NNMatch, Stats, error) {
	switch alg {
	case SeqScan:
		m, st := core.SeqScanNNCtx(ctx, db.ds, qr, ts, k, oneSided)
		return m, st, nil
	case MTIndex, STIndex:
		return db.ix.MTIndexNNCtx(ctx, qr, ts, k, oneSided)
	default:
		return nil, Stats{}, fmt.Errorf("tsq: unknown algorithm %v", alg)
	}
}

// nnAttributed is rangeAttributed's nearest-neighbor counterpart; see
// there for why it is a separate method.
func (db *DB) nnAttributed(ctx context.Context, qid uint64, qr *core.Record, ts []Transform, k int, oneSided bool, alg Algorithm, root *obs.Span) (m []NNMatch, st Stats, err error) {
	pre := obs.ReadResources()
	if ctx == nil {
		ctx = context.Background()
	}
	pprof.Do(ctx, pprof.Labels(
		"tsq_query", "nn",
		"tsq_algo", alg.String(),
		"tsq_qid", strconv.FormatUint(qid, 10),
	), func(lctx context.Context) {
		m, st, err = db.nnDispatch(lctx, qr, ts, k, oneSided, alg)
	})
	res := obs.ReadResources().Sub(pre)
	st.AllocBytes = res.AllocBytes
	st.Mallocs = res.Mallocs
	st.GCCycles = res.GCCycles
	st.GCPauseNs = res.GCPauseNs
	if root != nil {
		root.Set(obs.AAllocBytes, res.AllocBytes)
		root.Set(obs.AMallocs, res.Mallocs)
		root.Set(obs.AGCCycles, res.GCCycles)
		root.Set(obs.AGCPauseNs, res.GCPauseNs)
	}
	return m, st, err
}

// Explain returns the planner's cost comparison for a range query with
// the given transformation set and threshold, without running the query.
func (db *DB) Explain(q Series, ts []Transform, thr Threshold) (string, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	qr, err := db.ds.QueryRecord(q)
	if err != nil {
		return "", err
	}
	plan, err := db.ix.PlanRange(qr, ts, thr.Epsilon(db.ds.N), core.QRectSafe, core.DefaultCostParams())
	if err != nil {
		return "", err
	}
	return plan.String(), nil
}

// RawRange finds every stored series whose original (un-normalized)
// values are within maxDistance of q in Euclidean distance — the
// whole-matching query of Agrawal et al., filtered through the mean and
// standard-deviation index dimensions (the reason the paper stores them).
// useIndex false scans the relation instead.
func (db *DB) RawRange(q Series, maxDistance float64, useIndex bool) ([]RawMatch, Stats, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	qr, err := db.ds.QueryRecord(q)
	if err != nil {
		return nil, Stats{}, err
	}
	if !useIndex {
		m, st := core.SeqScanRawRange(db.ds, qr, maxDistance)
		return m, st, nil
	}
	return db.ix.RawRange(qr, maxDistance)
}

// OptimalPartition estimates the best contiguous partition of ts into
// transformation rectangles for range queries around q, using the paper's
// Eq. 20 cost model with measured index probes, and returns the group
// sizes alongside the estimated cost.
func (db *DB) OptimalPartition(q Series, ts []Transform, thr Threshold) (groups [][]int, cost float64, err error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	qr, err := db.ds.QueryRecord(q)
	if err != nil {
		return nil, 0, err
	}
	return db.ix.OptimalPartition(qr, ts, thr.Epsilon(db.ds.N), core.QRectSafe, core.DefaultCostParams())
}

// Transformation constructors, re-exported for API completeness.

// Identity returns the identity transformation for length-n series.
func Identity(n int) Transform { return transform.Identity(n) }

// MovingAverage returns the circular m-day moving-average transformation.
func MovingAverage(n, m int) Transform { return transform.MovingAverage(n, m) }

// MovingAverages returns moving averages for windows from..to.
func MovingAverages(n, from, to int) []Transform { return transform.MovingAverageSet(n, from, to) }

// Momentum returns the lag-1 momentum transformation.
func Momentum(n int) Transform { return transform.Momentum(n) }

// TimeShift returns the exact circular s-day shift.
func TimeShift(n, s int) Transform { return transform.TimeShift(n, s) }

// TimeShifts returns shifts from..to.
func TimeShifts(n, from, to int) []Transform { return transform.TimeShiftSet(n, from, to) }

// Scale returns scaling by c > 0.
func Scale(n int, c float64) Transform { return transform.Scale(n, c) }

// Scales returns scalings by the given factors.
func Scales(n int, factors []float64) []Transform { return transform.ScaleSet(n, factors) }

// Invert returns multiplication by -1.
func Invert(n int) Transform { return transform.Invert(n) }

// Reverse returns the time-reversal transformation.
func Reverse(n int) Transform { return transform.Reverse(n) }

// EMA returns the exponential moving average with factor alpha in (0, 1].
func EMA(n int, alpha float64) Transform { return transform.EMA(n, alpha) }

// WeightedMovingAverage returns the weighted moving average with trailing
// weights (weights[0] applies to the current sample).
func WeightedMovingAverage(n int, weights []float64) Transform {
	return transform.WeightedMovingAverage(n, weights)
}

// Inverted returns t composed with a sign flip.
func Inverted(t Transform) Transform { return transform.Inverted(t) }

// WithInverted returns ts followed by the inversion of each element.
func WithInverted(ts []Transform) []Transform { return transform.WithInverted(ts) }

// Compose returns "first t1, then t2".
func Compose(t2, t1 Transform) Transform { return transform.Compose(t2, t1) }

// ParsePipeline parses the pipeline syntax (e.g. "shift(0..10) | mv(1..40)")
// for series of length n; Flatten the result to get the transformation set.
func ParsePipeline(text string, n int) (Pipeline, error) { return query.ParsePipeline(text, n) }

// SortMatches orders matches by record id then transformation index, for
// deterministic comparison of result sets.
func SortMatches(ms []Match) { core.SortMatches(ms) }

// EuclideanDistance returns the distance between two equal-length series.
func EuclideanDistance(a, b Series) float64 { return series.EuclideanDistance(a, b) }

// PearsonCorrelation returns the cross-correlation of two series.
func PearsonCorrelation(a, b Series) float64 { return series.Correlation(a, b) }

// Normalize returns the normal form of s with its mean and std.
func Normalize(s Series) (norm Series, mean, std float64) { return s.NormalForm() }

// DistanceForCorrelation converts a correlation threshold to the
// equivalent normal-form distance for length-n series (Eq. 9).
func DistanceForCorrelation(n int, rho float64) float64 {
	return series.DistanceForCorrelation(n, rho)
}
