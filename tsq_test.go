package tsq

import (
	"math"
	"strings"
	"testing"

	"tsq/internal/datagen"
)

func openTestDB(t testing.TB, seed int64, count, n int) *DB {
	t.Helper()
	db, err := Open(datagen.RandomWalks(seed, count, n), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOpenAndAccessors(t *testing.T) {
	ss := datagen.RandomWalks(1, 10, 32)
	db, err := Open(ss, []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 10 || db.SeriesLength() != 32 {
		t.Errorf("Len=%d SeriesLength=%d", db.Len(), db.SeriesLength())
	}
	if db.Name(3) != "d" || db.Name(99) != "" {
		t.Errorf("Name: %q %q", db.Name(3), db.Name(99))
	}
	got := db.Get(0)
	if EuclideanDistance(got, ss[0]) != 0 {
		t.Error("Get returned different data")
	}
	got[0] = 1e18
	if db.Get(0)[0] == 1e18 {
		t.Error("Get does not copy")
	}
	norm := db.NormalForm(0)
	if math.Abs(norm.Mean()) > 1e-9 {
		t.Error("NormalForm not normalized")
	}
	if db.Get(-5) != nil || db.NormalForm(42) != nil {
		t.Error("out-of-range access returned data")
	}
}

func TestAllAlgorithmsAgree(t *testing.T) {
	db := openTestDB(t, 2, 300, 64)
	ts := MovingAverages(64, 5, 20)
	thr := Correlation(0.90)
	q := db.Get(17)

	type key struct {
		rec int64
		tr  int
	}
	toSet := func(ms []Match) map[key]bool {
		s := make(map[key]bool)
		for _, m := range ms {
			s[key{m.RecordID, m.TransformIdx}] = true
		}
		return s
	}
	want, _, err := db.Range(q, ts, thr, QueryOptions{Algorithm: SeqScan})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("degenerate test: no matches")
	}
	for _, opts := range []QueryOptions{
		{Algorithm: MTIndex},
		{Algorithm: STIndex},
		{Algorithm: MTIndex, TransformsPerMBR: 4},
		{Algorithm: MTIndex, ClusterPartition: true},
		{Algorithm: MTIndex, ClusterPartition: true, TransformsPerMBR: 6},
	} {
		got, _, err := db.Range(q, ts, thr, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		ws, gs := toSet(want), toSet(got)
		if len(ws) != len(gs) {
			t.Fatalf("%+v: %d matches, want %d", opts, len(gs), len(ws))
		}
		for k := range ws {
			if !gs[k] {
				t.Fatalf("%+v: missing %v", opts, k)
			}
		}
	}
}

func TestRangeByID(t *testing.T) {
	db := openTestDB(t, 3, 100, 64)
	ts := MovingAverages(64, 5, 10)
	got, _, err := db.RangeByID(5, ts, Correlation(0.9), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The query series always matches itself.
	self := false
	for _, m := range got {
		if m.RecordID == 5 {
			self = true
		}
	}
	if !self {
		t.Error("query series did not match itself")
	}
	if _, _, err := db.RangeByID(1000, ts, Correlation(0.9), QueryOptions{}); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestJoinFacade(t *testing.T) {
	db := openTestDB(t, 4, 80, 64)
	ts := MovingAverages(64, 5, 12)
	thr := Correlation(0.85)
	seq, _, err := db.Join(ts, thr, QueryOptions{Algorithm: SeqScan})
	if err != nil {
		t.Fatal(err)
	}
	mt, _, err := db.Join(ts, thr, QueryOptions{Algorithm: MTIndex})
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := db.Join(ts, thr, QueryOptions{Algorithm: STIndex})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) == 0 || len(seq) != len(mt) || len(seq) != len(st) {
		t.Errorf("join sizes: seq=%d mt=%d st=%d", len(seq), len(mt), len(st))
	}
}

func TestNearestNeighborsFacade(t *testing.T) {
	db := openTestDB(t, 5, 200, 64)
	ts := MovingAverages(64, 5, 15)
	q := db.Get(3)
	seq, _, err := db.NearestNeighbors(q, ts, 5, QueryOptions{Algorithm: SeqScan})
	if err != nil {
		t.Fatal(err)
	}
	mt, _, err := db.NearestNeighbors(q, ts, 5, QueryOptions{Algorithm: MTIndex})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 5 || len(mt) != 5 {
		t.Fatalf("lengths: %d %d", len(seq), len(mt))
	}
	for i := range seq {
		if math.Abs(seq[i].Distance-mt[i].Distance) > 1e-9 {
			t.Errorf("rank %d: %v vs %v", i, seq[i].Distance, mt[i].Distance)
		}
	}
}

func TestPipelineThroughFacade(t *testing.T) {
	db := openTestDB(t, 6, 100, 64)
	p, err := ParsePipeline("shift(0..2) | mv(3..5)", 64)
	if err != nil {
		t.Fatal(err)
	}
	ts := p.Flatten()
	if len(ts) != 9 {
		t.Fatalf("|T| = %d", len(ts))
	}
	got, _, err := db.Range(db.Get(0), ts, Correlation(0.9), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Error("pipeline query returned nothing (self-match expected)")
	}
}

func TestThresholdHelpers(t *testing.T) {
	if d := DistanceForCorrelation(128, 0.96); d < 3.18 || d > 3.20 {
		t.Errorf("DistanceForCorrelation = %v", d)
	}
	a := Series{1, 2, 3, 4}
	if PearsonCorrelation(a, a) < 0.999 {
		t.Error("self correlation")
	}
	norm, mean, std := Normalize(a)
	if math.Abs(mean-2.5) > 1e-12 || std <= 0 || math.Abs(norm.Mean()) > 1e-12 {
		t.Error("Normalize")
	}
}

func TestOptimalPartitionFacade(t *testing.T) {
	db := openTestDB(t, 7, 300, 64)
	ts := MovingAverages(64, 6, 21)
	groups, cost, err := db.OptimalPartition(db.Get(0), ts, Correlation(0.92))
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) == 0 || cost <= 0 {
		t.Errorf("groups=%v cost=%v", groups, cost)
	}
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != len(ts) {
		t.Errorf("partition covers %d of %d", total, len(ts))
	}
}

func TestAlgorithmString(t *testing.T) {
	if MTIndex.String() != "MT-index" || STIndex.String() != "ST-index" || SeqScan.String() != "sequential-scan" {
		t.Error("algorithm names")
	}
	if Algorithm(9).String() == "" {
		t.Error("unknown algorithm name empty")
	}
	if _, _, err := openTestDB(t, 8, 10, 16).Range(make(Series, 16), nil, Distance(1), QueryOptions{Algorithm: Algorithm(9)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestDiskStatsExposed(t *testing.T) {
	db := openTestDB(t, 9, 500, 64)
	db.ResetDiskStats()
	_, st, err := db.Range(db.Get(1), MovingAverages(64, 5, 20), Correlation(0.9), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	disk := db.DiskStats()
	if disk.Reads == 0 || st.DAAll == 0 {
		t.Errorf("disk reads %d, DAAll %d", disk.Reads, st.DAAll)
	}
	// Query-level node accesses are visible as storage reads.
	if int(disk.Reads) < st.DAAll {
		t.Errorf("storage reads %d < node accesses %d", disk.Reads, st.DAAll)
	}
}

func TestConcurrentQueries(t *testing.T) {
	db := openTestDB(t, 40, 200, 64)
	ts := MovingAverages(64, 5, 12)
	thr := Correlation(0.9)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; i < 20; i++ {
				if _, _, err := db.RangeByID(int64((w*20+i)%db.Len()), ts, thr, QueryOptions{}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestConcurrentQueriesWithWrites(t *testing.T) {
	db := openTestDB(t, 41, 100, 32)
	ts := MovingAverages(32, 2, 6)
	thr := Correlation(0.8)
	done := make(chan error, 5)
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 15; i++ {
				if _, _, err := db.RangeByID(int64(i%50), ts, thr, QueryOptions{}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	go func() {
		for i := 0; i < 10; i++ {
			id, err := db.Insert("w", db.Get(int64(i)))
			if err != nil {
				done <- err
				return
			}
			if err := db.Delete(id); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for w := 0; w < 5; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestSubsequenceFacade(t *testing.T) {
	ss := datagen.StockMarket(50, 30, 128, datagen.DefaultMarketOptions())
	x, err := NewSubsequenceIndex(ss, SubseqOptions{Window: 24})
	if err != nil {
		t.Fatal(err)
	}
	if x.Window() != 24 {
		t.Errorf("Window = %d", x.Window())
	}
	q := ss[5][40:64]
	got, st, err := x.Search(q, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	want := ScanSubsequences(ss, q, 0.8)
	if len(got) != len(want) || len(want) == 0 {
		t.Fatalf("subsequence search: %d matches, scan %d", len(got), len(want))
	}
	if st.NodeAccesses == 0 {
		t.Error("no node accesses")
	}
}

func TestAutoAlgorithmAndExplain(t *testing.T) {
	db := openTestDB(t, 60, 500, 128)
	ts := MovingAverages(128, 5, 24)
	thr := Correlation(0.96)
	q := db.Get(9)
	want, _, err := db.Range(q, ts, thr, QueryOptions{Algorithm: SeqScan})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := db.Range(q, ts, thr, QueryOptions{Algorithm: Auto})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("auto plan answered %d, seqscan %d", len(got), len(want))
	}
	explain, err := db.Explain(q, ts, thr)
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"chosen:", "seqscan", "st-index", "mt-index"} {
		if !strings.Contains(explain, needle) {
			t.Errorf("Explain output missing %q:\n%s", needle, explain)
		}
	}
	if Auto.String() != "auto" {
		t.Error("Auto name")
	}
}

func TestRawRangeFacade(t *testing.T) {
	db := openTestDB(t, 70, 150, 64)
	q := db.Get(8)
	idx, stIdx, err := db.RawRange(q, 50, true)
	if err != nil {
		t.Fatal(err)
	}
	scan, _, err := db.RawRange(q, 50, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != len(scan) || len(idx) == 0 {
		t.Fatalf("raw range: index %d vs scan %d", len(idx), len(scan))
	}
	if stIdx.DAAll == 0 {
		t.Error("index raw range reported no accesses")
	}
}

func TestInfo(t *testing.T) {
	db := openTestDB(t, 80, 200, 64)
	info, err := db.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Series != 200 || info.SeriesLength != 64 || info.IndexedK != 2 {
		t.Errorf("info = %+v", info)
	}
	if info.TreeHeight < 1 || info.Pages == 0 || info.PageSize != 4096 || info.LeafCapacity <= 0 {
		t.Errorf("info geometry = %+v", info)
	}
	if info.Paged {
		t.Error("in-memory DB reported as paged")
	}
}

func TestClosestPairsFacade(t *testing.T) {
	db := openTestDB(t, 90, 150, 64)
	ts := MovingAverages(64, 5, 12)
	want, _, err := db.ClosestPairs(ts, 4, SeqScan)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := db.ClosestPairs(ts, 4, MTIndex)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 4 || len(got) != 4 {
		t.Fatalf("lengths %d/%d", len(want), len(got))
	}
	for i := range got {
		if math.Abs(got[i].Distance-want[i].Distance) > 1e-9 {
			t.Fatalf("rank %d: %v vs %v", i, got[i].Distance, want[i].Distance)
		}
	}
}
