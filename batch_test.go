package tsq

import (
	"context"
	"reflect"
	"testing"

	"tsq/internal/datagen"
)

// TestBatchMatchesSingleQueries checks the public batch API end to end:
// every batch result equals the same query run alone, across algorithms,
// by-id and by-series query points, and worker counts.
func TestBatchMatchesSingleQueries(t *testing.T) {
	ss := datagen.RandomWalks(21, 300, 64)
	db, err := Open(ss, nil, Options{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	ts := MovingAverages(64, 5, 16)
	thr := Correlation(0.92)

	var reqs []BatchRequest
	for i := 0; i < 20; i++ {
		req := BatchRequest{ID: int64(i * 11 % db.Len()), ByID: true, Transforms: ts, Threshold: thr}
		switch i % 4 {
		case 1:
			req.Opts.Algorithm = SeqScan
		case 2:
			req.Opts.Algorithm = STIndex
		case 3:
			req.ByID = false
			req.Query = db.Get(int64(i))
		}
		reqs = append(reqs, req)
	}
	reqs = append(reqs, BatchRequest{ID: 3, ByID: true, Transforms: ts, K: 5})
	reqs = append(reqs, BatchRequest{ID: 1 << 30, ByID: true, Transforms: ts, Threshold: thr}) // bad id

	for _, workers := range []int{1, 4, 0} {
		results := db.Batch(context.Background(), reqs, workers)
		if len(results) != len(reqs) {
			t.Fatalf("%d results for %d requests", len(results), len(reqs))
		}
		for i, req := range reqs {
			res := results[i]
			if req.ByID && req.ID == 1<<30 {
				if res.Err == nil {
					t.Errorf("workers=%d req=%d: missing id did not error", workers, i)
				}
				continue
			}
			if res.Err != nil {
				t.Fatalf("workers=%d req=%d: %v", workers, i, res.Err)
			}
			if req.K > 0 {
				want, _, err := db.NearestNeighbors(db.Get(req.ID), ts, req.K, QueryOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if len(res.NN) != len(want) {
					t.Errorf("workers=%d req=%d: %d NN answers, want %d", workers, i, len(res.NN), len(want))
				}
				continue
			}
			var want []Match
			if req.ByID {
				want, _, err = db.RangeByID(req.ID, ts, thr, req.Opts)
			} else {
				want, _, err = db.Range(req.Query, ts, thr, req.Opts)
			}
			if err != nil {
				t.Fatal(err)
			}
			got := res.Matches
			SortMatches(got)
			SortMatches(want)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("workers=%d req=%d: batch answer diverges from single query", workers, i)
			}
		}
	}
}

// TestBatchConcurrentWithQueries runs Batch while single queries hammer
// the same database from other goroutines — the shared-index concurrency
// claim, checked under -race.
func TestBatchConcurrentWithQueries(t *testing.T) {
	ss := datagen.RandomWalks(23, 200, 64)
	db, err := Open(ss, nil, Options{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	ts := MovingAverages(64, 5, 12)
	thr := Correlation(0.92)
	reqs := make([]BatchRequest, 32)
	for i := range reqs {
		reqs[i] = BatchRequest{ID: int64(i * 5 % db.Len()), ByID: true, Transforms: ts, Threshold: thr}
	}
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 10; i++ {
				if _, _, err := db.RangeByID(int64((w*17+i)%db.Len()), ts, thr, QueryOptions{Workers: 2}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for i := 0; i < 3; i++ {
		for _, res := range db.Batch(context.Background(), reqs, 4) {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
		}
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
