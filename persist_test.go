package tsq

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"tsq/internal/datagen"
)

func TestCreateOpenFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "market.tsq")
	ss := datagen.StockMarket(55, 200, 64, datagen.DefaultMarketOptions())
	names := make([]string, len(ss))
	for i := range names {
		names[i] = "s" + string(rune('A'+i%26)) + string(rune('0'+i%10))
	}
	db, err := CreateFile(path, ss, names, Options{PageSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	ts := MovingAverages(64, 5, 15)
	thr := Correlation(0.92)
	q := db.Get(7)
	want, _, err := db.Range(q, ts, thr, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 200 || re.SeriesLength() != 64 {
		t.Fatalf("reopened: len=%d n=%d", re.Len(), re.SeriesLength())
	}
	if re.Name(7) != names[7] {
		t.Errorf("name lost: %q vs %q", re.Name(7), names[7])
	}
	if EuclideanDistance(re.Get(7), ss[7]) != 0 {
		t.Error("raw series corrupted across reopen")
	}
	got, _, err := re.Range(q, ts, thr, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("reopened query: %d matches, want %d", len(got), len(want))
	}
	// And seqscan agrees with the reopened index.
	seq, _, err := re.Range(q, ts, thr, QueryOptions{Algorithm: SeqScan})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(got) {
		t.Fatalf("reopened MT %d vs seqscan %d", len(got), len(seq))
	}
}

func TestPagedVerificationCountsRecordFetches(t *testing.T) {
	path := filepath.Join(t.TempDir(), "paged.tsq")
	ss := datagen.RandomWalks(9, 300, 64)
	db, err := CreateFile(path, ss, nil, Options{PageSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.ResetDiskStats()
	_, st, err := db.Range(db.Get(0), MovingAverages(64, 5, 15), Correlation(0.9), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Candidates == 0 {
		t.Fatal("no candidates; test is vacuous")
	}
	// Every candidate verification fetched a record page through the
	// storage manager: total backend I/O (reads plus readahead-prefetched
	// pages plus buffer hits — a contiguous run of k cold pages counts as
	// 1 read + k-1 prefetched) covers node accesses plus candidate
	// fetches.
	io := db.DiskStats()
	total := int(io.Reads + io.Prefetched + io.Hits)
	if total < st.DAAll+st.Candidates {
		t.Errorf("backend I/O %d (%d reads + %d prefetched + %d hits) < node accesses %d + candidates %d",
			total, io.Reads, io.Prefetched, io.Hits, st.DAAll, st.Candidates)
	}
}

func TestInsertDeleteLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "life.tsq")
	ss := datagen.RandomWalks(10, 50, 32)
	db, err := CreateFile(path, ss, nil, Options{PageSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	ts := MovingAverages(32, 2, 6)
	thr := Distance(1e9) // everything matches: checks membership exactly

	// Insert a new series; it becomes queryable.
	extra := datagen.RandomWalks(77, 1, 32)[0]
	id, err := db.Insert("extra", extra)
	if err != nil {
		t.Fatal(err)
	}
	if id != 50 || db.Len() != 51 {
		t.Fatalf("id=%d len=%d", id, db.Len())
	}
	found := func(db *DB, want int64) bool {
		ms, _, err := db.Range(db.Get(0), ts, thr, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range ms {
			if m.RecordID == want {
				return true
			}
		}
		return false
	}
	if !found(db, id) {
		t.Error("inserted series not returned by a catch-all query")
	}

	// Delete it; it disappears from index and scans.
	if err := db.Delete(id); err != nil {
		t.Fatal(err)
	}
	if found(db, id) {
		t.Error("deleted series still returned by MT query")
	}
	seq, _, _ := db.Range(db.Get(0), ts, thr, QueryOptions{Algorithm: SeqScan})
	for _, m := range seq {
		if m.RecordID == id {
			t.Error("deleted series still returned by seqscan")
		}
	}
	if db.Get(id) != nil {
		t.Error("deleted series still accessible")
	}
	if err := db.Delete(id); err == nil {
		t.Error("double delete succeeded")
	}

	// Both survive a reopen.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 51 {
		t.Fatalf("reopened len = %d (ids stay allocated)", re.Len())
	}
	if re.Get(id) != nil {
		t.Error("tombstone not persisted")
	}
	if found(re, id) {
		t.Error("deleted series resurfaced after reopen")
	}
	if !found(re, 49) {
		t.Error("live series lost after reopen")
	}
}

func TestInMemoryInsertDelete(t *testing.T) {
	db := openTestDB(t, 30, 40, 32)
	id, err := db.Insert("new", datagen.RandomWalks(31, 1, 32)[0])
	if err != nil || id != 40 {
		t.Fatalf("insert: %v %v", id, err)
	}
	if err := db.Delete(3); err != nil {
		t.Fatal(err)
	}
	ms, _, err := db.Range(db.Get(0), MovingAverages(32, 2, 4), Distance(1e9), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.RecordID == 3 {
			t.Error("deleted record matched")
		}
	}
	if _, err := db.Insert("short", make(Series, 5)); err == nil {
		t.Error("wrong-length insert accepted")
	}
}

func TestOpenFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenFile(filepath.Join(dir, "missing.tsq")); err == nil {
		t.Error("missing file opened")
	}
	// A non-database file is rejected by magic.
	bogus := filepath.Join(dir, "bogus.tsq")
	if err := writeRawHeaderBogus(bogus); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(bogus); err == nil {
		t.Error("bogus file opened")
	}
}

func writeRawHeaderBogus(path string) error {
	data := make([]byte, 64)
	copy(data, "NOPE")
	return os.WriteFile(path, data, 0o644)
}

func TestJoinAndNNOnPagedDB(t *testing.T) {
	path := filepath.Join(t.TempDir(), "join.tsq")
	ss := datagen.StockMarket(66, 120, 64, datagen.DefaultMarketOptions())
	db, err := CreateFile(path, ss, nil, Options{PageSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ts := MovingAverages(64, 5, 10)
	seqJ, _, err := db.Join(ts, Correlation(0.9), QueryOptions{Algorithm: SeqScan})
	if err != nil {
		t.Fatal(err)
	}
	mtJ, _, err := db.Join(ts, Correlation(0.9), QueryOptions{Algorithm: MTIndex})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqJ) != len(mtJ) {
		t.Fatalf("paged join: %d vs %d", len(mtJ), len(seqJ))
	}
	nnSeq, _, err := db.NearestNeighbors(db.Get(2), ts, 3, QueryOptions{Algorithm: SeqScan})
	if err != nil {
		t.Fatal(err)
	}
	nnMT, _, err := db.NearestNeighbors(db.Get(2), ts, 3, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range nnSeq {
		if math.Abs(nnSeq[i].Distance-nnMT[i].Distance) > 1e-9 {
			t.Fatalf("paged NN rank %d: %v vs %v", i, nnMT[i].Distance, nnSeq[i].Distance)
		}
	}
}

func TestInsertAfterReopenDoesNotCorrupt(t *testing.T) {
	// Regression: a reopened manager must resume page allocation after
	// the existing file contents, or inserts overwrite live pages.
	path := filepath.Join(t.TempDir(), "grow.tsq")
	ss := datagen.RandomWalks(11, 60, 32)
	db, err := CreateFile(path, ss, nil, Options{PageSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	extra := datagen.RandomWalks(12, 10, 32)
	for i, s := range extra {
		if _, err := re.Insert(fmt.Sprintf("late%d", i), s); err != nil {
			t.Fatal(err)
		}
	}
	if err := re.Verify(); err != nil {
		t.Fatalf("integrity after post-reopen inserts: %v", err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	// And again across a second reopen.
	re2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.Len() != 70 {
		t.Fatalf("len after second reopen = %d, want 70", re2.Len())
	}
	if err := re2.Verify(); err != nil {
		t.Fatalf("integrity after second reopen: %v", err)
	}
	// Old and new records both intact.
	if EuclideanDistance(re2.Get(0), ss[0]) != 0 {
		t.Error("original record corrupted")
	}
	if EuclideanDistance(re2.Get(65), extra[5]) != 0 {
		t.Error("inserted record corrupted")
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.tsq")
	ss := datagen.RandomWalks(13, 40, 32)
	db, err := CreateFile(path, ss, nil, Options{PageSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Verify(); err != nil {
		t.Fatalf("fresh database failed verification: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip bytes in the middle of the file (record/node territory).
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := f.Stat()
	if _, err := f.WriteAt([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, st.Size()/2); err != nil {
		t.Fatal(err)
	}
	f.Close()
	re, err := OpenFile(path)
	if err != nil {
		return // corruption surfaced at open: also acceptable
	}
	defer re.Close()
	if err := re.Verify(); err == nil {
		t.Error("verification passed on a corrupted file")
	}
}
