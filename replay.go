// Deterministic workload replay: ReplayFile re-runs every query in a
// capture journal against a database and verifies each answer digest.
// Because the engine's answer sets are bit-identical across verification
// modes (NaiveVerify, FlatLB, Workers — the PR 4/6 contracts), a replay
// under overridden options must reproduce every digest exactly while the
// effort counters (pages, tier skips, abandons) move — which is what
// makes the report a regression diff: answers prove correctness,
// counter deltas localize the performance change.

package tsq

import (
	"context"
	"fmt"
	"io"
	"time"

	"tsq/internal/core"
	"tsq/internal/obs/capture"
	"tsq/internal/storage"
)

// ReplayOptions configures ReplayFile.
type ReplayOptions struct {
	// Override, when non-nil, mutates each replayed query's decoded
	// options before re-execution — the "-set flatlb=true" mechanism.
	// Answer digests must still match: option overrides change effort,
	// never answers.
	Override func(*QueryOptions)
	// Limit stops after this many query records (0 replays everything).
	Limit int64
}

// ReplayTotals aggregates effort counters across replayed queries, one
// set for the capture-time run and one for the replay.
type ReplayTotals struct {
	DurationNs  int64 `json:"duration_ns"`
	Matches     int64 `json:"matches"`
	Candidates  int64 `json:"candidates"`
	SkippedLB0  int64 `json:"skipped_lb0"`
	SkippedLB1  int64 `json:"skipped_lb1"`
	SkippedLB2  int64 `json:"skipped_lb2"`
	Abandoned   int64 `json:"abandoned"`
	Comparisons int64 `json:"comparisons"`
	PagesRead   int64 `json:"pages_read"`
	BufferHits  int64 `json:"buffer_hits"`
}

func (t *ReplayTotals) add(st capture.StatsRecord) {
	t.DurationNs += st.DurationNs
	t.Matches += st.Matches
	t.Candidates += st.Candidates
	t.SkippedLB0 += st.SkippedLB0
	t.SkippedLB1 += st.SkippedLB1
	t.SkippedLB2 += st.SkippedLB2
	t.Abandoned += st.Abandoned
	t.Comparisons += st.Comparisons
	t.PagesRead += st.PagesRead
	t.BufferHits += st.BufferHits
}

// SkippedLB returns the total candidates dismissed by the lower bound.
func (t *ReplayTotals) SkippedLB() int64 { return t.SkippedLB0 + t.SkippedLB1 + t.SkippedLB2 }

// ReplayRow is the per-query outcome of a replay.
type ReplayRow struct {
	QueryID uint64 `json:"query_id"`
	Kind    string `json:"kind"`
	// Label summarizes the query spec for human-readable diffs.
	Label string `json:"label"`
	// Skipped names why the query was not replayed ("" = replayed).
	Skipped string `json:"skipped,omitempty"`
	// Err is a replay-time execution error.
	Err string `json:"err,omitempty"`
	// DigestOK reports whether the replayed answer digest equals the
	// captured one (false for skipped and errored rows).
	DigestOK bool            `json:"digest_ok"`
	Captured capture.Digest  `json:"captured_digest"`
	Replayed *capture.Digest `json:"replayed_digest,omitempty"`

	CapturedStats capture.StatsRecord `json:"captured_stats"`
	ReplayedStats capture.StatsRecord `json:"replayed_stats"`
}

// ReplayReport is the outcome of replaying one capture file: per-query
// rows plus aggregate effort totals for both runs.
type ReplayReport struct {
	CapturePath string `json:"capture_path"`
	// Records counts query records read; Replayed + Skipped = Records.
	Records  int64 `json:"records"`
	Replayed int64 `json:"replayed"`
	Skipped  int64 `json:"skipped"`
	// Errors counts queries that failed at replay time; Mismatches
	// counts replayed queries whose answer digest diverged.
	Errors     int64 `json:"errors"`
	Mismatches int64 `json:"mismatches"`
	// Truncated reports that the capture ended in a torn tail (the
	// records before it replayed normally).
	Truncated bool `json:"truncated"`

	CapturedTotals ReplayTotals `json:"captured_totals"`
	ReplayedTotals ReplayTotals `json:"replayed_totals"`

	Rows []ReplayRow `json:"rows"`
}

// OK reports whether every record replayed with a matching digest.
func (r *ReplayReport) OK() bool { return r.Errors == 0 && r.Mismatches == 0 }

// ReplayFile replays the capture journal at path against db. Every
// query record is re-executed through the same public query path that
// produced it and its answer digest compared against the captured one;
// opts.Override re-runs the workload under alternative query options
// (answers must be identical by the engine's contracts — only effort
// may differ). Subsequence records rebuild a trail index over db's
// series per distinct window, so the database must hold the sequences
// the capture was recorded against. A corrupt frame stops the replay
// with an error wrapping capture.ErrCorrupt; the report accumulated so
// far is still returned. Note that replayed queries go through the
// normal dispatch path, so they are journaled again if capture is
// enabled in this process.
func ReplayFile(ctx context.Context, db *DB, path string, opts ReplayOptions) (*ReplayReport, error) {
	r, err := capture.OpenFile(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = r.Close() }()

	rep := &ReplayReport{CapturePath: path}
	subIdx := make(map[int32]*SubsequenceIndex)
	for opts.Limit <= 0 || rep.Records < opts.Limit {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		rec, ts, err := r.Next()
		if err == io.EOF {
			rep.Truncated = r.Truncated()
			break
		}
		if err != nil {
			return rep, err
		}
		rep.Records++
		row := db.replayOne(ctx, rec, ts, opts.Override, subIdx)
		switch {
		case row.Skipped != "":
			rep.Skipped++
		case row.Err != "":
			rep.Replayed++
			rep.Errors++
		default:
			rep.Replayed++
			if !row.DigestOK {
				rep.Mismatches++
			}
			rep.CapturedTotals.add(row.CapturedStats)
			rep.ReplayedTotals.add(row.ReplayedStats)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// replayQueryOptions reconstructs QueryOptions from the journal form.
func replayQueryOptions(o capture.OptionsRecord) QueryOptions {
	return QueryOptions{
		Algorithm:        Algorithm(o.Algorithm),
		TransformsPerMBR: int(o.TransformsPerMBR),
		Workers:          int(o.Workers),
		ClusterPartition: o.ClusterPartition,
		UseOrdering:      o.UseOrdering,
		PaperQueryRect:   o.PaperQueryRect,
		OneSided:         o.OneSided,
		NaiveVerify:      o.NaiveVerify,
		FlatLB:           o.FlatLB,
		QueryTransform:   o.QueryTransform,
	}
}

// replayOne re-executes one captured query and scores its row.
func (db *DB) replayOne(ctx context.Context, rec *capture.Record, ts []Transform,
	override func(*QueryOptions), subIdx map[int32]*SubsequenceIndex) ReplayRow {
	row := ReplayRow{
		QueryID:       rec.QueryID,
		Kind:          rec.Kind.String(),
		Label:         replayLabel(rec),
		Captured:      rec.Digest,
		CapturedStats: rec.Stats,
	}
	if rec.Err != "" {
		row.Skipped = "captured query errored: " + rec.Err
		return row
	}
	qo := replayQueryOptions(rec.Opts)
	if override != nil {
		override(&qo)
	}

	// The trail index over db's series is built once per distinct window,
	// outside the measured span — the capture-time run paid for its index
	// build outside the query too.
	if rec.Kind == capture.KindSubseq {
		if _, ok := subIdx[rec.Window]; !ok {
			all := make([]Series, db.Len())
			for i := range all {
				all[i] = db.Get(int64(i))
			}
			ix, err := NewSubsequenceIndex(all, SubseqOptions{Window: int(rec.Window)})
			if err != nil {
				row.Err = err.Error()
				return row
			}
			subIdx[rec.Window] = ix
		}
	}

	var digest capture.Digest
	var matches int
	var st Stats
	var sst SubseqStats
	var err error
	ioPre := storage.GlobalStats()
	start := time.Now()
	switch rec.Kind {
	case capture.KindRange:
		var m []Match
		if rec.SeriesID >= 0 {
			s := db.Get(rec.SeriesID)
			if s == nil {
				row.Skipped = fmt.Sprintf("series %d not in this database", rec.SeriesID)
				return row
			}
			if h := capture.HashFloats(s); h != rec.QueryHash {
				row.Skipped = fmt.Sprintf("series %d content differs from capture (hash %#x vs %#x)",
					rec.SeriesID, h, rec.QueryHash)
				return row
			}
			m, st, err = db.RangeByIDCtx(ctx, rec.SeriesID, ts, Distance(rec.Eps), qo)
		} else {
			m, st, err = db.RangeCtx(ctx, rec.Query, ts, Distance(rec.Eps), qo)
		}
		matches = len(m)
		digest = core.AnswerDigestRange(m)
	case capture.KindNN:
		var m []NNMatch
		m, st, err = db.NearestNeighborsCtx(ctx, rec.Query, ts, int(rec.K), qo)
		matches = len(m)
		digest = core.AnswerDigestNN(m)
	case capture.KindSubseq:
		var m []SubseqMatch
		m, sst, err = subIdx[rec.Window].Search(rec.Query, rec.Eps)
		matches = len(m)
		digest = SubseqDigest(m)
		st.Candidates = sst.Candidates
		st.Abandoned = sst.Abandoned
	default:
		row.Skipped = fmt.Sprintf("unknown query kind %d", rec.Kind)
		return row
	}
	dur := time.Since(start)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	row.ReplayedStats = captureQueryStats(st, dur, matches, ioPre, storage.GlobalStats())
	row.Replayed = &digest
	row.DigestOK = digest == rec.Digest
	return row
}

// replayLabel summarizes a captured query for the text report.
func replayLabel(rec *capture.Record) string {
	switch rec.Kind {
	case capture.KindRange:
		src := fmt.Sprintf("id=%d", rec.SeriesID)
		if rec.SeriesID < 0 {
			src = fmt.Sprintf("adhoc[%d]", len(rec.Query))
		}
		return fmt.Sprintf("range %s %s eps=%.4g", src, Algorithm(rec.Opts.Algorithm), rec.Eps)
	case capture.KindNN:
		return fmt.Sprintf("nn k=%d %s", rec.K, Algorithm(rec.Opts.Algorithm))
	case capture.KindSubseq:
		return fmt.Sprintf("subseq w=%d eps=%.4g", rec.Window, rec.Eps)
	default:
		return rec.Kind.String()
	}
}

// WriteText renders the report for humans: the verdict, aggregate
// effort deltas, and one line per mismatched, errored or skipped query.
func (r *ReplayReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "replay of %s: %d records, %d replayed, %d skipped, %d errors, %d digest mismatches\n",
		r.CapturePath, r.Records, r.Replayed, r.Skipped, r.Errors, r.Mismatches)
	if r.Truncated {
		fmt.Fprintf(w, "note: capture ended in a torn tail (incomplete final frame ignored)\n")
	}
	if r.Replayed > 0 {
		fmt.Fprintf(w, "\n%-14s %14s %14s %9s\n", "aggregate", "captured", "replayed", "delta")
		row := func(name string, c, g int64) {
			fmt.Fprintf(w, "%-14s %14d %14d %9s\n", name, c, g, deltaPct(c, g))
		}
		fmt.Fprintf(w, "%-14s %14s %14s %9s\n", "latency",
			time.Duration(r.CapturedTotals.DurationNs).Round(time.Microsecond),
			time.Duration(r.ReplayedTotals.DurationNs).Round(time.Microsecond),
			deltaPct(r.CapturedTotals.DurationNs, r.ReplayedTotals.DurationNs))
		row("matches", r.CapturedTotals.Matches, r.ReplayedTotals.Matches)
		row("pages read", r.CapturedTotals.PagesRead, r.ReplayedTotals.PagesRead)
		row("buffer hits", r.CapturedTotals.BufferHits, r.ReplayedTotals.BufferHits)
		row("candidates", r.CapturedTotals.Candidates, r.ReplayedTotals.Candidates)
		row("lb skips", r.CapturedTotals.SkippedLB(), r.ReplayedTotals.SkippedLB())
		row("  tier 0", r.CapturedTotals.SkippedLB0, r.ReplayedTotals.SkippedLB0)
		row("  tier 1", r.CapturedTotals.SkippedLB1, r.ReplayedTotals.SkippedLB1)
		row("  tier 2", r.CapturedTotals.SkippedLB2, r.ReplayedTotals.SkippedLB2)
		row("abandoned", r.CapturedTotals.Abandoned, r.ReplayedTotals.Abandoned)
		row("comparisons", r.CapturedTotals.Comparisons, r.ReplayedTotals.Comparisons)
	}
	for _, q := range r.Rows {
		switch {
		case q.Skipped != "":
			fmt.Fprintf(w, "skipped:  qid %d %s %s: %s\n", q.QueryID, q.Kind, q.Label, q.Skipped)
		case q.Err != "":
			fmt.Fprintf(w, "error:    qid %d %s %s: %s\n", q.QueryID, q.Kind, q.Label, q.Err)
		case !q.DigestOK:
			fmt.Fprintf(w, "mismatch: qid %d %s %s: captured %d matches (digest %#x), replayed %d (digest %#x)\n",
				q.QueryID, q.Kind, q.Label, q.Captured.Count, q.Captured.Sum, q.Replayed.Count, q.Replayed.Sum)
		}
	}
	if r.OK() {
		fmt.Fprintf(w, "\nall %d replayed queries returned bit-identical answers\n", r.Replayed)
	}
}

// deltaPct renders the replayed-vs-captured change of one counter.
func deltaPct(captured, replayed int64) string {
	if captured == 0 {
		if replayed == 0 {
			return "0%"
		}
		return "+inf"
	}
	return fmt.Sprintf("%+.1f%%", 100*float64(replayed-captured)/float64(captured))
}
