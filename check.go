package tsq

// File scrubbing: CheckFile examines a database file for corruption
// without modifying it — the offline counterpart of the checksummed read
// path. It reports rather than repairs: the file format keeps no
// redundancy to rebuild a lost page from, so the honest output of a scrub
// is an exact list of what is damaged.

import (
	"fmt"
	"os"
	"strings"

	"tsq/internal/storage"
)

// maxReportedBadPages caps the page list a CheckReport carries; the
// total count is always exact.
const maxReportedBadPages = 64

// CheckReport is the result of CheckFile.
type CheckReport struct {
	Path        string
	PageSize    int  // physical page size from the raw header (0 if unreadable)
	Checksummed bool // file carries per-page CRC32C trailers
	Pages       int  // full pages the file holds (including the page-0 header region)
	TailBytes   int  // bytes past the last full page: a torn tail, always corruption
	Scanned     int  // pages checksum-verified (0 for pre-checksum files)

	// BadPages lists pages that failed checksum verification, capped at
	// maxReportedBadPages; BadPageCount is the exact total.
	BadPages     []storage.PageID
	BadPageCount int

	// HeaderErr, OpenErr, and IntegrityErr record the failures of the
	// three structural passes (raw header validation, OpenFile, and
	// DB.Verify), empty when the pass succeeded. A non-empty HeaderErr
	// suppresses the later passes — without a trusted page size there is
	// nothing sound to scan.
	HeaderErr    string
	OpenErr      string
	IntegrityErr string

	// Sharded databases: ShardCount is the manifest's shard count and
	// Shards holds one full sub-report per shard file (every physical
	// pass — header, tail, checksums, standalone open — runs per shard,
	// so corruption is always pinned to a shard). ManifestErr records a
	// bad manifest: wrong magic, torn CRC, implausible parameters. The
	// top-level OpenErr/IntegrityErr then cover the combined
	// scatter-gather open. All zero/empty for single-file databases.
	ShardCount  int
	ManifestErr string
	Shards      []*CheckReport
}

// OK reports whether the scrub found the file fully intact.
func (r *CheckReport) OK() bool {
	if r.ManifestErr != "" {
		return false
	}
	for _, s := range r.Shards {
		if !s.OK() {
			return false
		}
	}
	return r.TailBytes == 0 && r.BadPageCount == 0 &&
		r.HeaderErr == "" && r.OpenErr == "" && r.IntegrityErr == ""
}

// String renders the report for humans (the tsquery -check output).
func (r *CheckReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "check %s\n", r.Path)
	if r.ManifestErr != "" {
		fmt.Fprintf(&b, "  manifest:  BAD (%s)\n", r.ManifestErr)
		fmt.Fprintf(&b, "result: CORRUPT\n")
		return b.String()
	}
	if r.ShardCount > 0 {
		fmt.Fprintf(&b, "  manifest:  %d shards\n", r.ShardCount)
		for i, s := range r.Shards {
			status := "ok"
			if !s.OK() {
				status = "CORRUPT"
			}
			fmt.Fprintf(&b, "  shard %d:   %s (%s)\n", i, status, s.Path)
			if !s.OK() {
				for _, line := range strings.Split(strings.TrimRight(s.String(), "\n"), "\n") {
					fmt.Fprintf(&b, "    %s\n", line)
				}
			}
		}
		if r.OpenErr != "" {
			fmt.Fprintf(&b, "  open:      BAD (%s)\n", r.OpenErr)
		} else if r.IntegrityErr != "" {
			fmt.Fprintf(&b, "  integrity: BAD (%s)\n", r.IntegrityErr)
		} else {
			fmt.Fprintf(&b, "  structure: ok\n")
		}
		if r.OK() {
			fmt.Fprintf(&b, "result: OK\n")
		} else {
			fmt.Fprintf(&b, "result: CORRUPT\n")
		}
		return b.String()
	}
	if r.HeaderErr != "" {
		fmt.Fprintf(&b, "  header:    BAD (%s)\n", r.HeaderErr)
		fmt.Fprintf(&b, "result: CORRUPT\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  format:    %d-byte pages, checksums %s\n", r.PageSize, map[bool]string{true: "on", false: "off (pre-checksum file)"}[r.Checksummed])
	fmt.Fprintf(&b, "  size:      %d pages", r.Pages)
	if r.TailBytes != 0 {
		fmt.Fprintf(&b, " + %d-byte torn tail", r.TailBytes)
	}
	b.WriteString("\n")
	if r.Checksummed {
		fmt.Fprintf(&b, "  checksums: %d pages scanned, %d bad", r.Scanned, r.BadPageCount)
		if r.BadPageCount > 0 {
			fmt.Fprintf(&b, " (pages %v", r.BadPages)
			if r.BadPageCount > len(r.BadPages) {
				fmt.Fprintf(&b, " and %d more", r.BadPageCount-len(r.BadPages))
			}
			b.WriteString(")")
		}
		b.WriteString("\n")
	}
	if r.OpenErr != "" {
		fmt.Fprintf(&b, "  open:      BAD (%s)\n", r.OpenErr)
	} else if r.IntegrityErr != "" {
		fmt.Fprintf(&b, "  integrity: BAD (%s)\n", r.IntegrityErr)
	} else {
		fmt.Fprintf(&b, "  structure: ok\n")
	}
	if r.OK() {
		fmt.Fprintf(&b, "result: OK\n")
	} else {
		fmt.Fprintf(&b, "result: CORRUPT\n")
	}
	return b.String()
}

// CheckFile scrubs the database file at path: it validates the raw
// header, detects a torn tail, checksum-verifies every page (for
// checksummed files), and runs the full structural integrity pass
// (OpenFile + Verify). A shard manifest is validated and every shard
// file scrubbed individually (each is a complete page file), then the
// combined scatter-gather open runs; any damage is reported against the
// shard that carries it. The files are only read. The returned error is
// non-nil only when the file cannot be examined at all (e.g. it does not
// exist); corruption is reported in the CheckReport, not as an error.
func CheckFile(path string) (*CheckReport, error) {
	if _, err := os.Stat(path); err != nil {
		return nil, fmt.Errorf("tsq: check: %w", err)
	}
	magic, err := sniffMagic(path)
	if err != nil {
		return nil, fmt.Errorf("tsq: check: %w", err)
	}
	if magic == manifestMagic {
		return checkShardedFile(path)
	}
	return checkSingleFile(path)
}

// checkShardedFile scrubs a manifest and its shard files.
func checkShardedFile(path string) (*CheckReport, error) {
	r := &CheckReport{Path: path}
	mi, err := readManifest(path)
	if err != nil {
		r.ManifestErr = err.Error()
		return r, nil
	}
	r.ShardCount = mi.shards
	for i := 0; i < mi.shards; i++ {
		sp := shardPath(path, i)
		sub, err := checkSingleFile(sp)
		if err != nil {
			// A missing or unreadable shard file is corruption of the
			// sharded database, not an examination failure.
			sub = &CheckReport{Path: sp, HeaderErr: err.Error()}
		}
		r.Shards = append(r.Shards, sub)
	}
	// Combined structural pass: the scatter-gather open cross-checks the
	// shard files against each other (matching n/k, counts matching the
	// partition function) — corruption no single-shard scrub can see.
	db, err := OpenFile(path)
	if err != nil {
		r.OpenErr = err.Error()
		return r, nil
	}
	defer func() { _ = db.Close() }() // read-only scrub
	if err := db.Verify(); err != nil {
		r.IntegrityErr = err.Error()
	}
	return r, nil
}

// checkSingleFile scrubs one page file (a whole single-file database or
// one shard, which is itself a complete database over shard-local ids).
func checkSingleFile(path string) (*CheckReport, error) {
	r := &CheckReport{Path: path}
	st, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("tsq: check: %w", err)
	}
	physPageSize, flags, err := readRawHeader(path)
	if err != nil {
		r.HeaderErr = err.Error()
		return r, nil
	}
	r.PageSize = physPageSize
	r.Checksummed = flags&rawFlagChecksums != 0
	r.Pages = int(st.Size() / int64(physPageSize))
	r.TailBytes = int(st.Size() % int64(physPageSize))

	if r.Checksummed {
		if err := r.scanChecksums(path); err != nil {
			return nil, err
		}
	}

	// Structural pass: a full open plus index/heap verification. This
	// is what catches corruption checksums cannot see (a logically
	// inconsistent but correctly-written file) and everything in
	// pre-checksum files.
	db, err := OpenFile(path)
	if err != nil {
		r.OpenErr = err.Error()
		return r, nil
	}
	defer func() { _ = db.Close() }() // read-only scrub
	if err := db.Verify(); err != nil {
		r.IntegrityErr = err.Error()
	}
	return r, nil
}

// scanChecksums verifies the trailer of every full page after the
// header region. Reads go through a Manager over the checksum layer so
// failures land in the storage error counters exactly as read-path
// failures do.
func (r *CheckReport) scanChecksums(path string) error {
	fileBackend, err := storage.NewFileBackend(path, r.PageSize)
	if err != nil {
		return fmt.Errorf("tsq: check: %w", err)
	}
	cb := storage.NewChecksumBackend(fileBackend, r.PageSize)
	mgr := storage.NewManager(storage.Options{
		PageSize: cb.LogicalPageSize(),
		Backend:  cb,
	})
	defer func() { _ = mgr.Close() }()
	buf := make([]byte, cb.LogicalPageSize())
	for id := storage.PageID(1); int(id) < r.Pages; id++ {
		r.Scanned++
		if err := mgr.Read(id, buf); err != nil {
			r.BadPageCount++
			if len(r.BadPages) < maxReportedBadPages {
				r.BadPages = append(r.BadPages, id)
			}
		}
	}
	return nil
}
