package tsq

// File scrubbing: CheckFile examines a database file for corruption
// without modifying it — the offline counterpart of the checksummed read
// path. It reports rather than repairs: the file format keeps no
// redundancy to rebuild a lost page from, so the honest output of a scrub
// is an exact list of what is damaged.

import (
	"fmt"
	"os"
	"strings"

	"tsq/internal/storage"
	"tsq/internal/wal"
)

// maxReportedBadPages caps the page list a CheckReport carries; the
// total count is always exact.
const maxReportedBadPages = 64

// CheckReport is the result of CheckFile.
type CheckReport struct {
	Path        string
	PageSize    int  // physical page size from the raw header (0 if unreadable)
	Checksummed bool // file carries per-page CRC32C trailers
	Pages       int  // full pages the file holds (including the page-0 header region)
	TailBytes   int  // bytes past the last full page: a torn tail, always corruption
	Scanned     int  // pages checksum-verified (0 for pre-checksum files)

	// BadPages lists pages that failed checksum verification, capped at
	// maxReportedBadPages; BadPageCount is the exact total. HealedPages
	// counts the bad pages whose full after-image is pending in the
	// write-ahead log: those are a crash between the log fsync and the
	// page flush, repaired by replay on the next open, so they do not
	// make the file corrupt.
	BadPages     []storage.PageID
	BadPageCount int
	HealedPages  int

	// FreePages counts pages that are entirely zero: allocated (the file
	// was grown) but never written. An aborted transaction leaves these
	// behind — the file grew before the operation was logged, and the
	// abort only returns the pages to the allocator. They hold no data,
	// so they are reported but are not corruption.
	FreePages int

	// Write-ahead log scrub. WALRecords/WALBytes describe the pending
	// (acknowledged but not yet folded) records; WALTornBytes is a torn
	// tail past the last durable record — a crashed append, truncated on
	// the next read-write open, so informational rather than corruption.
	// WALErr records real log corruption (foreign magic, an undecodable
	// durable record); it fails the scrub.
	WALPresent   bool
	WALRecords   int
	WALBytes     int64
	WALTornBytes int64
	WALErr       string

	// HeaderErr, OpenErr, and IntegrityErr record the failures of the
	// three structural passes (raw header validation, OpenFile, and
	// DB.Verify), empty when the pass succeeded. A non-empty HeaderErr
	// suppresses the later passes — without a trusted page size there is
	// nothing sound to scan.
	HeaderErr    string
	OpenErr      string
	IntegrityErr string

	// Sharded databases: ShardCount is the manifest's shard count and
	// Shards holds one full sub-report per shard file (every physical
	// pass — header, tail, checksums, standalone open — runs per shard,
	// so corruption is always pinned to a shard). ManifestErr records a
	// bad manifest: wrong magic, torn CRC, implausible parameters. The
	// top-level OpenErr/IntegrityErr then cover the combined
	// scatter-gather open. All zero/empty for single-file databases.
	ShardCount  int
	ManifestErr string
	Shards      []*CheckReport
}

// OK reports whether the scrub found the file fully intact.
func (r *CheckReport) OK() bool {
	if r.ManifestErr != "" {
		return false
	}
	for _, s := range r.Shards {
		if !s.OK() {
			return false
		}
	}
	return r.TailBytes == 0 && r.BadPageCount == r.HealedPages && r.WALErr == "" &&
		r.HeaderErr == "" && r.OpenErr == "" && r.IntegrityErr == ""
}

// String renders the report for humans (the tsquery -check output).
func (r *CheckReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "check %s\n", r.Path)
	if r.ManifestErr != "" {
		fmt.Fprintf(&b, "  manifest:  BAD (%s)\n", r.ManifestErr)
		fmt.Fprintf(&b, "result: CORRUPT\n")
		return b.String()
	}
	if r.ShardCount > 0 {
		fmt.Fprintf(&b, "  manifest:  %d shards\n", r.ShardCount)
		for i, s := range r.Shards {
			status := "ok"
			if !s.OK() {
				status = "CORRUPT"
			}
			fmt.Fprintf(&b, "  shard %d:   %s (%s)\n", i, status, s.Path)
			if !s.OK() {
				for _, line := range strings.Split(strings.TrimRight(s.String(), "\n"), "\n") {
					fmt.Fprintf(&b, "    %s\n", line)
				}
			}
		}
		if r.OpenErr != "" {
			fmt.Fprintf(&b, "  open:      BAD (%s)\n", r.OpenErr)
		} else if r.IntegrityErr != "" {
			fmt.Fprintf(&b, "  integrity: BAD (%s)\n", r.IntegrityErr)
		} else {
			fmt.Fprintf(&b, "  structure: ok\n")
		}
		if r.OK() {
			fmt.Fprintf(&b, "result: OK\n")
		} else {
			fmt.Fprintf(&b, "result: CORRUPT\n")
		}
		return b.String()
	}
	if r.HeaderErr != "" {
		fmt.Fprintf(&b, "  header:    BAD (%s)\n", r.HeaderErr)
		fmt.Fprintf(&b, "result: CORRUPT\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  format:    %d-byte pages, checksums %s\n", r.PageSize, map[bool]string{true: "on", false: "off (pre-checksum file)"}[r.Checksummed])
	fmt.Fprintf(&b, "  size:      %d pages", r.Pages)
	if r.TailBytes != 0 {
		fmt.Fprintf(&b, " + %d-byte torn tail", r.TailBytes)
	}
	b.WriteString("\n")
	if r.Checksummed {
		fmt.Fprintf(&b, "  checksums: %d pages scanned, %d bad", r.Scanned, r.BadPageCount)
		if r.FreePages > 0 {
			fmt.Fprintf(&b, ", %d free (never written)", r.FreePages)
		}
		if r.BadPageCount > 0 {
			if r.HealedPages > 0 {
				fmt.Fprintf(&b, " (%d healable from wal)", r.HealedPages)
			}
			fmt.Fprintf(&b, " (pages %v", r.BadPages)
			if r.BadPageCount > len(r.BadPages) {
				fmt.Fprintf(&b, " and %d more", r.BadPageCount-len(r.BadPages))
			}
			b.WriteString(")")
		}
		b.WriteString("\n")
	}
	if r.WALErr != "" {
		fmt.Fprintf(&b, "  wal:       BAD (%s)\n", r.WALErr)
	} else if r.WALPresent {
		if r.WALRecords == 0 && r.WALTornBytes == 0 {
			fmt.Fprintf(&b, "  wal:       empty\n")
		} else {
			fmt.Fprintf(&b, "  wal:       %d pending records, %d bytes", r.WALRecords, r.WALBytes)
			if r.WALTornBytes > 0 {
				fmt.Fprintf(&b, " + %d-byte torn tail (crashed append; truncated on next open)", r.WALTornBytes)
			}
			b.WriteString("\n")
		}
	}
	if r.OpenErr != "" {
		fmt.Fprintf(&b, "  open:      BAD (%s)\n", r.OpenErr)
	} else if r.IntegrityErr != "" {
		fmt.Fprintf(&b, "  integrity: BAD (%s)\n", r.IntegrityErr)
	} else {
		fmt.Fprintf(&b, "  structure: ok\n")
	}
	if r.OK() {
		fmt.Fprintf(&b, "result: OK\n")
	} else {
		fmt.Fprintf(&b, "result: CORRUPT\n")
	}
	return b.String()
}

// CheckFile scrubs the database file at path: it validates the raw
// header, detects a torn tail, checksum-verifies every page (for
// checksummed files), and runs the full structural integrity pass
// (OpenFile + Verify). A shard manifest is validated and every shard
// file scrubbed individually (each is a complete page file), then the
// combined scatter-gather open runs; any damage is reported against the
// shard that carries it. The files are only read. The returned error is
// non-nil only when the file cannot be examined at all (e.g. it does not
// exist); corruption is reported in the CheckReport, not as an error.
func CheckFile(path string) (*CheckReport, error) {
	if _, err := os.Stat(path); err != nil {
		return nil, fmt.Errorf("tsq: check: %w", err)
	}
	magic, err := sniffMagic(path)
	if err != nil {
		return nil, fmt.Errorf("tsq: check: %w", err)
	}
	if magic == manifestMagic {
		return checkShardedFile(path)
	}
	return checkSingleFile(path)
}

// checkShardedFile scrubs a manifest and its shard files.
func checkShardedFile(path string) (*CheckReport, error) {
	r := &CheckReport{Path: path}
	mi, err := readManifest(path)
	if err != nil {
		r.ManifestErr = err.Error()
		return r, nil
	}
	r.ShardCount = mi.shards
	for i := 0; i < mi.shards; i++ {
		sp := shardPath(path, i)
		sub, err := checkSingleFile(sp)
		if err != nil {
			// A missing or unreadable shard file is corruption of the
			// sharded database, not an examination failure.
			sub = &CheckReport{Path: sp, HeaderErr: err.Error()}
		}
		r.Shards = append(r.Shards, sub)
	}
	// Combined structural pass: the scatter-gather open cross-checks the
	// shard files against each other (matching n/k, counts matching the
	// partition function) — corruption no single-shard scrub can see.
	// Scrub mode keeps every shard file and WAL untouched.
	db, err := openFileAny(path, nil, openScrub)
	if err != nil {
		r.OpenErr = err.Error()
		return r, nil
	}
	defer func() { _ = db.Close() }() // read-only scrub
	if err := db.Verify(); err != nil {
		r.IntegrityErr = err.Error()
	}
	return r, nil
}

// checkSingleFile scrubs one page file (a whole single-file database or
// one shard, which is itself a complete database over shard-local ids).
func checkSingleFile(path string) (*CheckReport, error) {
	r := &CheckReport{Path: path}
	st, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("tsq: check: %w", err)
	}
	physPageSize, flags, err := readRawHeader(path)
	if err != nil {
		r.HeaderErr = err.Error()
		return r, nil
	}
	r.PageSize = physPageSize
	r.Checksummed = flags&rawFlagChecksums != 0
	r.Pages = int(st.Size() / int64(physPageSize))
	r.TailBytes = int(st.Size() % int64(physPageSize))

	// Write-ahead log scrub: scan the log without repairing it, and
	// collect the pages whose after-images it still holds — a checksum
	// failure on one of those is a crash mid-flush, healed by replay,
	// not data loss.
	pending, info, werr := wal.ReadPending(walPath(path))
	r.WALPresent = info.Present
	r.WALRecords = info.Records
	r.WALBytes = info.Bytes
	r.WALTornBytes = info.TornBytes
	covered := make(map[storage.PageID]bool)
	if werr != nil {
		r.WALErr = werr.Error()
	} else {
		for _, rec := range pending {
			for _, img := range rec.Pages {
				covered[img.ID] = true
			}
		}
	}

	if r.Checksummed {
		if err := r.scanChecksums(path, covered); err != nil {
			return nil, err
		}
	}

	// Structural pass: a full open plus index/heap verification. This
	// is what catches corruption checksums cannot see (a logically
	// inconsistent but correctly-written file) and everything in
	// pre-checksum files. The scrub-mode open replays pending WAL
	// records into a memory overlay, so the pass judges the state the
	// next real open would recover to — while the file and the log stay
	// untouched.
	db, err := openFile(path, nil, openScrub)
	if err != nil {
		r.OpenErr = err.Error()
		return r, nil
	}
	defer func() { _ = db.Close() }() // read-only scrub
	if err := db.Verify(); err != nil {
		r.IntegrityErr = err.Error()
	}
	return r, nil
}

// scanChecksums verifies the trailer of every full page after the
// header region. Reads go through a Manager over the checksum layer so
// failures land in the storage error counters exactly as read-path
// failures do. Bad pages in covered (pending WAL after-images) are
// counted as healed.
func (r *CheckReport) scanChecksums(path string, covered map[storage.PageID]bool) error {
	fileBackend, err := storage.NewFileBackend(path, r.PageSize)
	if err != nil {
		return fmt.Errorf("tsq: check: %w", err)
	}
	cb := storage.NewChecksumBackend(fileBackend, r.PageSize)
	mgr := storage.NewManager(storage.Options{
		PageSize: cb.LogicalPageSize(),
		Backend:  cb,
	})
	defer func() { _ = mgr.Close() }()
	buf := make([]byte, cb.LogicalPageSize())
	phys := make([]byte, r.PageSize)
	for id := storage.PageID(1); int(id) < r.Pages; id++ {
		r.Scanned++
		if err := mgr.Read(id, buf); err != nil {
			// An entirely-zero page is allocated-but-never-written (an
			// aborted transaction grew the file); it holds no data, so
			// it is free space, not corruption.
			if rerr := fileBackend.ReadPage(id, phys); rerr == nil && allZero(phys) {
				r.FreePages++
				continue
			}
			r.BadPageCount++
			if covered[id] {
				r.HealedPages++
			}
			if len(r.BadPages) < maxReportedBadPages {
				r.BadPages = append(r.BadPages, id)
			}
		}
	}
	return nil
}

// allZero reports whether every byte of p is zero.
func allZero(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}
