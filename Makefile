GO ?= go

.PHONY: all build test race bench benchdiff benchbase verify figures clean

all: verify

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Race-enabled run of the full suite. The concurrent paths (sharded buffer
# pool, parallel MT-index probes, batch executor) carry dedicated
# multi-goroutine tests that only bite under -race; keep this green.
race: build
	$(GO) test -race ./...

# The repo's verification recipe: tier-1 tests plus the race detector.
# errcheck runs when installed (CI installs it; locally it is optional).
verify: build
	$(GO) vet ./...
	@if command -v errcheck >/dev/null 2>&1; then \
		echo errcheck ./...; \
		errcheck -ignoretests ./...; \
	else \
		echo "errcheck not installed; skipping (go install github.com/kisielk/errcheck@latest)"; \
	fi
	$(GO) test ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run xxx ./...

# Distance-kernel and lower-bound micro-benchmarks: the blocked
# Euclidean/polar kernels and the flat-vs-cascade lower-bound pair.
KERNEL_BENCH = -bench 'BenchmarkKernel|BenchmarkLB' -run xxx -benchtime 200ms -count 6
KERNEL_PKGS  = ./internal/series/ ./internal/transform/ ./internal/core/

# benchbase refreshes the checked-in kernel benchmark baseline that
# benchdiff compares against. Run it on the reference machine after an
# intentional kernel change and commit bench/kernels.txt.
benchbase:
	$(GO) test $(KERNEL_BENCH) $(KERNEL_PKGS) | tee bench/kernels.txt

# benchdiff reruns the kernel benchmarks and compares them against the
# checked-in baseline with benchstat. Like errcheck, benchstat is used
# when installed and skipped otherwise
# (go install golang.org/x/perf/cmd/benchstat@latest).
benchdiff:
	@if command -v benchstat >/dev/null 2>&1; then \
		$(GO) test $(KERNEL_BENCH) $(KERNEL_PKGS) > bench/kernels.new.txt; \
		benchstat bench/kernels.txt bench/kernels.new.txt; \
		rm -f bench/kernels.new.txt; \
	else \
		echo "benchstat not installed; skipping (go install golang.org/x/perf/cmd/benchstat@latest)"; \
		$(GO) test $(KERNEL_BENCH) -count 1 $(KERNEL_PKGS); \
	fi

figures:
	$(GO) run ./cmd/tsbench -fig all -out figures

clean:
	$(GO) clean ./...
