GO ?= go

.PHONY: all build test race bench verify figures clean

all: verify

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Race-enabled run of the full suite. The concurrent paths (sharded buffer
# pool, parallel MT-index probes, batch executor) carry dedicated
# multi-goroutine tests that only bite under -race; keep this green.
race: build
	$(GO) test -race ./...

# The repo's verification recipe: tier-1 tests plus the race detector.
# errcheck runs when installed (CI installs it; locally it is optional).
verify: build
	$(GO) vet ./...
	@if command -v errcheck >/dev/null 2>&1; then \
		echo errcheck ./...; \
		errcheck -ignoretests ./...; \
	else \
		echo "errcheck not installed; skipping (go install github.com/kisielk/errcheck@latest)"; \
	fi
	$(GO) test ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run xxx ./...

figures:
	$(GO) run ./cmd/tsbench -fig all -out figures

clean:
	$(GO) clean ./...
