// Hedging demonstrates the introduction's "stocks that behave in
// approximately the opposite way (for hedging)". Because the similarity
// predicate applies the same transformation to both sides, negating both
// sides cancels — the way to ask for opposite behaviour is to negate the
// query: D(mv(s), mv(-q)) is small exactly when s moves against q under
// that moving average. One range query finds trackers, a second with the
// mirrored query finds hedges; both run through the MT-index.
//
// (The inverted transformations of the paper's Sec. 5.2 — inv composed
// with mv — serve there as a two-cluster performance workload; see
// cmd/tsbench -fig 9 and the cluster-aware partitioner.)
//
// Run with: go run ./examples/hedging
package main

import (
	"fmt"
	"log"

	"tsq"
	"tsq/internal/datagen"
)

const n = 128

func main() {
	stocks := datagen.StockMarket(2024, 800, n, datagen.DefaultMarketOptions())
	names := make([]string, 0, len(stocks)+3)
	for i := range stocks {
		names = append(names, fmt.Sprintf("stock%04d", i))
	}
	// Plant a few short positions: series that mirror existing stocks
	// around their mean price (inverse ETFs, roughly).
	const target = 7
	for i, base := range []int{target, 100, 250} {
		stocks = append(stocks, mirror(stocks[base]))
		names = append(names, fmt.Sprintf("inverse%d", i))
	}

	db, err := tsq.Open(stocks, names, tsq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ts := tsq.MovingAverages(n, 1, 20)
	thr := tsq.Correlation(0.98)
	q := db.Get(target)

	trackers, stats1, err := db.Range(q, ts, thr, tsq.QueryOptions{TransformsPerMBR: 8})
	if err != nil {
		log.Fatal(err)
	}
	hedges, stats2, err := db.Range(mirror(q), ts, thr, tsq.QueryOptions{TransformsPerMBR: 8})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("relative to %s, under some MV(1..20), |rho| >= 0.98:\n\n", db.Name(target))
	report := func(kind string, ms []tsq.Match) int {
		best := map[int64]tsq.Match{}
		for _, m := range ms {
			if m.RecordID == target {
				continue
			}
			if cur, ok := best[m.RecordID]; !ok || m.Distance < cur.Distance {
				best[m.RecordID] = m
			}
		}
		shown := 0
		for id := int64(0); id < int64(db.Len()); id++ {
			m, ok := best[id]
			if !ok {
				continue
			}
			if shown < 8 {
				fmt.Printf("  %s %-12s via %-6s dist %.3f\n", kind, db.Name(id), ts[m.TransformIdx].Name, m.Distance)
			}
			shown++
		}
		return shown
	}
	nT := report("tracks", trackers)
	fmt.Println()
	nH := report("hedges", hedges)
	fmt.Printf("\n%d trackers, %d hedge candidates (inverse0 mirrors the target and must appear)\n", nT, nH)
	fmt.Printf("work: %d+%d node accesses across %d+%d rectangle traversals\n",
		stats1.DAAll, stats2.DAAll, stats1.IndexSearches, stats2.IndexSearches)

	found := false
	for _, m := range hedges {
		if db.Name(m.RecordID) == "inverse0" {
			found = true
		}
	}
	if !found {
		fmt.Println("WARNING: planted inverse0 not found among hedges")
	}
}

// mirror reflects a series around its mean.
func mirror(s tsq.Series) tsq.Series {
	var mean float64
	for _, v := range s {
		mean += v
	}
	mean /= float64(len(s))
	out := make(tsq.Series, len(s))
	for i, v := range s {
		out[i] = 2*mean - v
	}
	return out
}
