// Pairs runs the paper's Query 2 — the transformed spatial self-join —
// as a pairs-trading screen: "find every pair of stocks whose closing
// prices correlate at 0.99 or better under some m-day moving average."
// The MT-index join traverses the R*-tree against itself once per
// transformation rectangle, applying the transformation MBR to both data
// rectangles before the overlap test, and compares the work against the
// quadratic sequential scan.
//
// Run with: go run ./examples/pairs
package main

import (
	"fmt"
	"log"
	"time"

	"tsq"
	"tsq/internal/datagen"
)

const n = 128

func main() {
	stocks := datagen.StockMarket(77, 500, n, datagen.DefaultMarketOptions())
	names := make([]string, len(stocks))
	for i := range names {
		names[i] = fmt.Sprintf("stock%04d", i)
	}
	db, err := tsq.Open(stocks, names, tsq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ts := tsq.MovingAverages(n, 5, 20)
	thr := tsq.Correlation(0.99)

	start := time.Now()
	mtPairs, mtStats, err := db.Join(ts, thr, tsq.QueryOptions{Algorithm: tsq.MTIndex})
	if err != nil {
		log.Fatal(err)
	}
	mtTime := time.Since(start)

	start = time.Now()
	seqPairs, seqStats, err := db.Join(ts, thr, tsq.QueryOptions{Algorithm: tsq.SeqScan})
	if err != nil {
		log.Fatal(err)
	}
	seqTime := time.Since(start)

	// Collapse (pair, transformation) matches to the best window per pair.
	type pairKey struct{ a, b int64 }
	best := map[pairKey]tsq.JoinMatch{}
	for _, m := range mtPairs {
		k := pairKey{m.IDA, m.IDB}
		if cur, ok := best[k]; !ok || m.Distance < cur.Distance {
			best[k] = m
		}
	}
	fmt.Printf("pairs correlating >= 0.99 under some MV(5..20): %d distinct pairs (%d (pair, mv) matches)\n\n",
		len(best), len(mtPairs))
	shown := 0
	for _, m := range mtPairs {
		k := pairKey{m.IDA, m.IDB}
		b, ok := best[k]
		if !ok || b != m {
			continue
		}
		rho := 1 - m.Distance*m.Distance/(2*float64(n-1))
		fmt.Printf("  %-10s ~ %-10s via %-5s rho %.4f\n", db.Name(m.IDA), db.Name(m.IDB), ts[m.TransformIdx].Name, rho)
		shown++
		if shown >= 10 {
			fmt.Printf("  ... and %d more pairs\n", len(best)-shown)
			break
		}
	}

	// Top-k form: the five most correlated pairs, found incrementally
	// without a threshold.
	top, topStats, err := db.ClosestPairs(ts, 5, tsq.MTIndex)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfive most correlated pairs (incremental closest-pairs search):")
	for _, m := range top {
		rho := 1 - m.Distance*m.Distance/(2*float64(n-1))
		fmt.Printf("  %-10s ~ %-10s via %-5s rho %.5f\n", db.Name(m.IDA), db.Name(m.IDB), ts[m.TransformIdx].Name, rho)
	}
	fmt.Printf("(resolved %d of %d possible pairs)\n", topStats.Candidates, db.Len()*(db.Len()-1)/2)

	fmt.Printf("\nMT-index join:   %8.3fs, %7d node accesses, %8d pair comparisons\n",
		mtTime.Seconds(), mtStats.DAAll, mtStats.Comparisons)
	fmt.Printf("sequential join: %8.3fs, %7d node accesses, %8d pair comparisons\n",
		seqTime.Seconds(), seqStats.DAAll, seqStats.Comparisons)
	if len(mtPairs) != len(seqPairs) {
		fmt.Printf("WARNING: answer sets differ (%d vs %d)\n", len(mtPairs), len(seqPairs))
	} else {
		fmt.Printf("answers agree: %d matches either way\n", len(seqPairs))
	}
}
