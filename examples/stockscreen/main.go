// Stockscreen reproduces the setting of the paper's Example 1.1 and turns
// it into a screening workflow:
//
//  1. Three market indexes (COMPV, NYV, DECL stand-ins) look unrelated in
//     raw form — the Euclidean distances are in the hundreds or thousands
//     because the scales differ wildly. After normalization and a short
//     moving average, COMPV and NYV become similar; COMPV and DECL need a
//     longer window. The program finds the shortest qualifying window for
//     each pair, the quantity the example cares about.
//
//  2. The same question is then asked against a whole market: "which
//     stocks track a target under *some* moving average, and what is the
//     shortest one?" — a single MT-index range query per answer.
//
// Run with: go run ./examples/stockscreen
package main

import (
	"fmt"
	"log"

	"tsq"
	"tsq/internal/datagen"
)

const n = 128

func main() {
	part1()
	part2()
}

// part1 is Example 1.1 itself.
func part1() {
	compv, nyv, decl := datagen.MarketIndexes(3, n)
	fmt.Println("--- Example 1.1: market indexes ---")
	fmt.Printf("raw distances: D(COMPV, NYV) = %.0f, D(COMPV, DECL) = %.0f\n",
		tsq.EuclideanDistance(compv, nyv), tsq.EuclideanDistance(compv, decl))

	db, err := tsq.Open([]tsq.Series{compv, nyv, decl},
		[]string{"COMPV", "NYV", "DECL"}, tsq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// One range query with the full MV(1..40) set returns, for every
	// series and window, whether the pair qualifies; the shortest window
	// per series is the example's answer.
	ts := tsq.MovingAverages(n, 1, 40)
	matches, _, err := db.Range(compv, ts, tsq.Distance(3), tsq.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	shortest := map[int64]int{}
	for _, m := range matches {
		w := m.TransformIdx + 1 // window m = index + 1 for MV(1..40)
		if cur, ok := shortest[m.RecordID]; !ok || w < cur {
			shortest[m.RecordID] = w
		}
	}
	for id := int64(1); id <= 2; id++ {
		if w, ok := shortest[id]; ok {
			fmt.Printf("shortest moving average making COMPV ~ %s (dist < 3): %d days\n",
				db.Name(id), w)
		} else {
			fmt.Printf("no moving average up to 40 days makes COMPV ~ %s\n", db.Name(id))
		}
	}
	fmt.Println()
}

// part2 screens a synthetic market for stocks tracking a target.
func part2() {
	fmt.Println("--- Screening a market for trackers of a target stock ---")
	stocks := datagen.StockMarket(1999, 1068, n, datagen.DefaultMarketOptions())
	names := make([]string, len(stocks))
	for i := range names {
		names[i] = fmt.Sprintf("stock%04d", i)
	}
	db, err := tsq.Open(stocks, names, tsq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	const target = 7
	ts := tsq.MovingAverages(n, 1, 40)
	matches, stats, err := db.RangeByID(target, ts, tsq.Correlation(0.96),
		tsq.QueryOptions{TransformsPerMBR: 8})
	if err != nil {
		log.Fatal(err)
	}
	shortest := map[int64]tsq.Match{}
	for _, m := range matches {
		if m.RecordID == target {
			continue
		}
		if cur, ok := shortest[m.RecordID]; !ok || m.TransformIdx < cur.TransformIdx {
			shortest[m.RecordID] = m
		}
	}
	fmt.Printf("stocks tracking %s under some MV(1..40), rho >= 0.96: %d\n",
		db.Name(target), len(shortest))
	printed := 0
	for id := int64(0); id < int64(db.Len()) && printed < 10; id++ {
		m, ok := shortest[id]
		if !ok {
			continue
		}
		fmt.Printf("  %s via %-5s (rho %.4f)\n", db.Name(id),
			ts[m.TransformIdx].Name,
			1-m.Distance*m.Distance/(2*float64(n-1)))
		printed++
	}
	fmt.Printf("one MT-index pass per rectangle: %d traversals, %d node accesses, %d/%d stocks verified\n",
		stats.IndexSearches, stats.DAAll, stats.Candidates, db.Len())
}
