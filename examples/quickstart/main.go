// Quickstart: index a handful of series and run one similarity range
// query under a set of moving averages.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"tsq"
)

func main() {
	// Build a tiny dataset: a slow sine wave, the same wave with noise,
	// the same wave scaled and shifted in value, and pure noise.
	const n = 128
	mk := func(f func(i int) float64) tsq.Series {
		s := make(tsq.Series, n)
		for i := range s {
			s[i] = f(i)
		}
		return s
	}
	noise := func(i int) float64 { // deterministic pseudo-noise
		x := math.Sin(float64(i)*12.9898) * 43758.5453
		return x - math.Floor(x) - 0.5
	}
	base := func(i int) float64 { return math.Sin(2 * math.Pi * float64(i) / 64) }
	ss := []tsq.Series{
		mk(base),
		mk(func(i int) float64 { return base(i) + 0.35*noise(i) }),
		mk(func(i int) float64 { return 250*base(i) + 1000 }),
		mk(func(i int) float64 { return 2 * noise(i*7) }),
	}
	names := []string{"wave", "noisy-wave", "scaled-wave", "noise"}

	db, err := tsq.Open(ss, names, tsq.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// "Find every series that matches the clean wave under some m-day
	// moving average, m in 1..20, with correlation at least 0.96."
	ts := tsq.MovingAverages(n, 1, 20)
	matches, stats, err := db.Range(ss[0], ts, tsq.Correlation(0.96), tsq.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query: which series match %q under MV(1..20), rho >= 0.96?\n\n", names[0])
	best := map[int64]tsq.Match{}
	for _, m := range matches {
		if cur, ok := best[m.RecordID]; !ok || m.Distance < cur.Distance {
			best[m.RecordID] = m
		}
	}
	for id := int64(0); id < int64(db.Len()); id++ {
		if m, ok := best[id]; ok {
			fmt.Printf("  %-12s matches via %-5s (distance %.3f)\n",
				db.Name(id), ts[m.TransformIdx].Name, m.Distance)
		} else {
			fmt.Printf("  %-12s no match\n", db.Name(id))
		}
	}
	fmt.Printf("\nnormalization makes %q match despite the x250 scale and +1000 shift;\n", names[2])
	fmt.Printf("the moving average smooths %q into a match; %q stays out.\n", names[1], names[3])
	fmt.Printf("\nwork done: %d index traversal(s), %d node accesses, %d of %d series verified\n",
		stats.IndexSearches, stats.DAAll, stats.Candidates, db.Len())
}
