// Patternsearch demonstrates subsequence matching (the Faloutsos et al.
// extension of the indexing technique, built here as tsq's
// SubsequenceIndex): take the last 20 days of one stock and find every
// place in the whole market's history where that shape occurred, at any
// offset of any stock.
//
// Run with: go run ./examples/patternsearch
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"tsq"
	"tsq/internal/datagen"
)

func main() {
	const n, window = 128, 20
	stocks := datagen.StockMarket(31, 400, n, datagen.DefaultMarketOptions())
	names := make([]string, len(stocks))
	for i := range names {
		names[i] = fmt.Sprintf("stock%04d", i)
	}
	// Search in shape space: normalize every stock so a pattern can match
	// regardless of price level and volatility.
	norms := make([]tsq.Series, len(stocks))
	for i, s := range stocks {
		norms[i], _, _ = tsq.Normalize(s)
	}
	// Plant three past occurrences of the pattern we will search for (a
	// noisy copy of stock0042's final 20 days) elsewhere in the market,
	// so there is something to find besides the pattern itself.
	const target = 42
	shape := norms[target][n-window:]
	for i, plant := range []struct{ seq, off int }{{7, 30}, {199, 80}, {333, 5}} {
		dst := norms[plant.seq][plant.off : plant.off+window]
		for t := range dst {
			dst[t] = shape[t] + 0.02*float64(t%5)*float64(i+1)/10
		}
	}

	start := time.Now()
	ix, err := tsq.NewSubsequenceIndex(norms, tsq.SubseqOptions{Window: window})
	if err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(start)

	// The pattern: the last 20 days of stock0042's normal form.
	pattern := norms[target][n-window:]

	start = time.Now()
	matches, stats, err := ix.Search(pattern, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	searchTime := time.Since(start)

	sort.Slice(matches, func(i, j int) bool { return matches[i].Distance < matches[j].Distance })
	fmt.Printf("pattern: last %d days of %s; searching %d stocks x %d offsets\n\n",
		window, names[target], len(stocks), n-window+1)
	fmt.Printf("%d occurrences within distance 0.6 (in normal-form units):\n", len(matches))
	for i, m := range matches {
		if i >= 10 {
			fmt.Printf("  ... and %d more\n", len(matches)-i)
			break
		}
		self := ""
		if m.Seq == target && m.Offset == n-window {
			self = "  (the pattern itself)"
		}
		fmt.Printf("  %-10s days %3d-%3d  distance %.3f%s\n",
			names[m.Seq], m.Offset, m.Offset+window-1, m.Distance, self)
	}

	// Confirm against the brute-force scan and report the work saved.
	scan := tsq.ScanSubsequences(norms, pattern, 0.6)
	totalWindows := len(stocks) * (n - window + 1)
	fmt.Printf("\nindex: %d of %d windows verified (%d node accesses); scan agrees with %d matches\n",
		stats.Candidates, totalWindows, stats.NodeAccesses, len(scan))
	fmt.Printf("build %.0fms, search %.2fms\n",
		buildTime.Seconds()*1000, searchTime.Seconds()*1000)
}
