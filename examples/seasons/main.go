// Seasons runs the introduction's third motivating query: "years when the
// temperature patterns in two regions of the world were similar". One
// series per (region, year); normalization removes the regions' different
// mean temperatures and amplitudes, a short moving average removes
// weather noise, and time shifts absorb the half-year phase offset
// between hemispheres — all in one one-sided MT-index query whose
// pipeline "mv(1..15)" is combined with "shift(0..d)" alternatives.
//
// Run with: go run ./examples/seasons
package main

import (
	"fmt"
	"log"
	"sort"

	"tsq"
	"tsq/internal/datagen"
)

func main() {
	const regions, years, days = 6, 12, 128
	ss, labels := datagen.Temperatures(7, regions, years, days)
	db, err := tsq.Open(ss, labels, tsq.Options{BulkLoad: true})
	if err != nil {
		log.Fatal(err)
	}

	// Part 1: same-phase comparison — which (region, year) pairs look
	// alike after smoothing? A plain symmetric query.
	const target = 2*regions + 0 // region0/year2
	ts := tsq.MovingAverages(days, 1, 15)
	matches, _, err := db.RangeByID(target, ts, tsq.Correlation(0.97),
		tsq.QueryOptions{Algorithm: tsq.Auto})
	if err != nil {
		log.Fatal(err)
	}
	best := map[int64]float64{}
	for _, m := range matches {
		if m.RecordID == target {
			continue
		}
		if d, ok := best[m.RecordID]; !ok || m.Distance < d {
			best[m.RecordID] = m.Distance
		}
	}
	type hit struct {
		id int64
		d  float64
	}
	var hits []hit
	for id, d := range best {
		hits = append(hits, hit{id, d})
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].d < hits[j].d })
	fmt.Printf("years similar to %s under some MV(1..15), rho >= 0.97:\n", db.Name(target))
	for i, h := range hits {
		if i >= 8 {
			fmt.Printf("  ... and %d more\n", len(hits)-i)
			break
		}
		fmt.Printf("  %-18s dist %.3f\n", db.Name(h.id), h.d)
	}

	// Part 2: cross-hemisphere comparison — the same question, allowing a
	// time shift to absorb the seasons being half a year apart. One-sided
	// semantics (shifts cancel two-sided); the pipeline composes a shift
	// sweep onto the smoothing.
	p, err := tsq.ParsePipeline("mv(10) | shift(56..72)", days)
	if err != nil {
		log.Fatal(err)
	}
	shifted := p.Flatten()
	mv10 := tsq.MovingAverage(days, 10)
	nn, _, err := db.NearestNeighbors(db.Get(target), shifted, 6,
		tsq.QueryOptions{QueryTransform: &mv10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnearest cross-phase years to %s (mv10, shift 56..72 days, one-sided):\n", db.Name(target))
	for _, m := range nn {
		fmt.Printf("  %-18s via %-18s dist %.3f\n",
			db.Name(m.RecordID), shifted[m.TransformIdx].Name, m.Distance)
	}
	fmt.Println("\nsouthern-hemisphere years surface once the half-period shift is allowed.")
}
