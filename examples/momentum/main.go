// Momentum reproduces the paper's Example 1.2: two stocks (PCG and PCL
// stand-ins) whose momenta look different because a price spike lands two
// days apart in the two series. Comparing momenta directly gives a large
// distance; shifting one momentum two days right aligns the spikes and
// shrinks it. The example then shows the same discovery as a query: a
// "momentum followed by a shift" pipeline, flattened into one
// transformation set (Sec. 3.3) and answered by one MT-index pass, finds
// the shift that minimizes the distance.
//
// Run with: go run ./examples/momentum
package main

import (
	"fmt"
	"log"

	"tsq"
	"tsq/internal/datagen"
	"tsq/internal/series"
)

const n = 128

func main() {
	const offset = 2
	pcg, pcl := datagen.SpikePair(5, n, offset)

	// Part 1: the raw phenomenon, in the time domain.
	mg := series.CircularMomentum(pcg)
	ml := series.CircularMomentum(pcl)
	before := tsq.EuclideanDistance(mg, ml)
	shifted := tsq.TimeShift(n, offset)
	after := tsq.EuclideanDistance(shifted.ApplySeries(mg), ml)
	fmt.Println("--- Example 1.2: momenta and time shifts ---")
	fmt.Printf("D(momentum(PCG), momentum(PCL))                 = %.2f\n", before)
	fmt.Printf("D(shift_2(momentum(PCG)), momentum(PCL))        = %.2f\n", after)
	fmt.Printf("(the paper's data: 13.01 before, 5.65 after)\n\n")

	// Part 2: discover the best shift with a query. A time shift applied
	// to BOTH sides of the distance cancels (shifts are unitary), so
	// alignment questions use the one-sided semantics — the literal form
	// of the paper's Algorithm 1: stored PCG is transformed by
	// "momentum then shift(s)" and compared against the momentum of the
	// query series PCL. The pipeline flattens to 6 transformations; a one-sided
	// nearest-neighbor query returns the (series, shift) pair minimizing
	// the distance.
	db, err := tsq.Open([]tsq.Series{pcg}, []string{"PCG"}, tsq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	p, err := tsq.ParsePipeline("momentum | shift(0..5)", n)
	if err != nil {
		log.Fatal(err)
	}
	ts := p.Flatten()
	mom := tsq.Momentum(n)
	nn, _, err := db.NearestNeighbors(pcl, ts, 1, tsq.QueryOptions{QueryTransform: &mom})
	if err != nil {
		log.Fatal(err)
	}
	best := nn[0]
	fmt.Println("--- The same discovery as a query ---")
	fmt.Printf("pipeline \"momentum | shift(0..5)\" -> %d transformations, compared one-sided against momentum(PCL)\n", len(ts))
	fmt.Printf("best alignment of PCG to PCL: %s, distance %.2f\n",
		ts[best.TransformIdx].Name, best.Distance)
	if ts[best.TransformIdx].Name != fmt.Sprintf("shift%d(momentum)", offset) {
		fmt.Printf("note: expected shift%d(momentum) to win\n", offset)
	}

	// Part 3: distances here are on normal forms (how the database
	// compares); show the full shift profile for context.
	fmt.Println("\nshift profile (distance of shifted normalized momenta):")
	qn, _, _ := series.Series(series.CircularMomentum(pcg)).NormalForm()
	ln, _, _ := series.Series(series.CircularMomentum(pcl)).NormalForm()
	for s := 0; s <= 5; s++ {
		d := tsq.EuclideanDistance(tsq.TimeShift(n, s).ApplySeries(qn), ln)
		bar := ""
		for i := 0; i < int(d); i++ {
			bar += "#"
		}
		fmt.Printf("  shift %d: %6.2f %s\n", s, d, bar)
	}
}
