//go:build integration

package tsq

import (
	"path/filepath"
	"reflect"
	"testing"

	"tsq/internal/datagen"
)

// TestDiskBackedPipeline is the disk-backed smoke test of the I/O-aware
// candidate pipeline (run with -tags=integration): a database in a real
// page file, MT-index range queries in both verification modes, and the
// acceptance criteria of the pipeline checked end to end — identical
// answers, strictly fewer backend page reads, readahead observed, and
// the lower-bound / abandoning counters engaged.
func TestDiskBackedPipeline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.tsq")
	ss := datagen.StockMarket(1999, 400, 128, datagen.DefaultMarketOptions())
	db, err := CreateFile(path, ss, nil, Options{PageSize: 4096, BufferPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	ts := MovingAverages(128, 6, 29)
	thr := Correlation(0.96)
	var naiveReads, pipeReads, prefetched int64
	var skipped, abandoned int
	for _, qid := range []int64{3, 57, 123, 256, 311} {
		naiveOpts := QueryOptions{Algorithm: MTIndex, TransformsPerMBR: 8, NaiveVerify: true}
		pipeOpts := QueryOptions{Algorithm: MTIndex, TransformsPerMBR: 8}

		db.ResetDiskStats()
		want, naiveSt, err := db.RangeByID(qid, ts, thr, naiveOpts)
		if err != nil {
			t.Fatal(err)
		}
		naiveReads += db.DiskStats().Reads

		db.ResetDiskStats()
		got, pipeSt, err := db.RangeByID(qid, ts, thr, pipeOpts)
		if err != nil {
			t.Fatal(err)
		}
		after := db.DiskStats()
		pipeReads += after.Reads
		prefetched += after.Prefetched
		skipped += pipeSt.SkippedLB
		abandoned += pipeSt.Abandoned

		SortMatches(want)
		SortMatches(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: pipeline answer diverged from naive verification", qid)
		}
		if pipeSt.Candidates+pipeSt.SkippedLB != naiveSt.Candidates {
			t.Fatalf("query %d: candidates %d + skipped %d != naive candidates %d",
				qid, pipeSt.Candidates, pipeSt.SkippedLB, naiveSt.Candidates)
		}
	}
	if pipeReads >= naiveReads {
		t.Errorf("pipeline page reads %d >= naive %d: no I/O win on disk", pipeReads, naiveReads)
	}
	if skipped == 0 || abandoned == 0 {
		t.Errorf("pipeline counters never engaged: skipped=%d abandoned=%d", skipped, abandoned)
	}
	if prefetched == 0 {
		t.Errorf("no pages were prefetched: run batching never engaged")
	}

	// The pipeline must also survive a close/reopen cycle (directory and
	// tree read back from the file).
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	want, _, err := re.RangeByID(57, ts, thr, QueryOptions{Algorithm: MTIndex, TransformsPerMBR: 8, NaiveVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := re.RangeByID(57, ts, thr, QueryOptions{Algorithm: MTIndex, TransformsPerMBR: 8})
	if err != nil {
		t.Fatal(err)
	}
	SortMatches(want)
	SortMatches(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("reopened database: pipeline answer diverged from naive verification")
	}
}
