package tsq

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"tsq/internal/datagen"
	"tsq/internal/obs/capture"
)

// captureMixedWorkload runs one of every captured query shape — range
// over all three algorithms (stored and ad-hoc query points), NN, and a
// subsequence search — and returns how many queries it issued.
func captureMixedWorkload(t *testing.T, db *DB) int {
	t.Helper()
	n := db.SeriesLength()
	ts := MovingAverages(n, 5, 20)
	thr := Correlation(0.95)
	queries := 0
	for id, opts := range map[int64]QueryOptions{
		5: {Algorithm: MTIndex, TransformsPerMBR: 8},
		6: {Algorithm: STIndex},
		7: {Algorithm: SeqScan},
	} {
		if _, _, err := db.RangeByID(id, ts, thr, opts); err != nil {
			t.Fatal(err)
		}
		queries++
	}
	q := db.Get(3)
	q[0] += 0.25
	if _, _, err := db.Range(q, ts, Distance(4), QueryOptions{Algorithm: MTIndex, TransformsPerMBR: 8}); err != nil {
		t.Fatal(err)
	}
	queries++
	if _, _, err := db.NearestNeighbors(q, ts, 5, QueryOptions{}); err != nil {
		t.Fatal(err)
	}
	queries++

	all := make([]Series, db.Len())
	for i := range all {
		all[i] = db.Get(int64(i))
	}
	ix, err := NewSubsequenceIndex(all, SubseqOptions{Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.Search(db.Get(2)[4:20], 2.5); err != nil {
		t.Fatal(err)
	}
	queries++
	return queries
}

func TestCaptureReplayRoundTrip(t *testing.T) {
	backends := map[string]func(t *testing.T) *DB{
		"mem": func(t *testing.T) *DB { return openTestDB(t, 7, 40, 64) },
		"disk": func(t *testing.T) *DB {
			db, err := CreateFile(filepath.Join(t.TempDir(), "rt.tsq"),
				datagen.RandomWalks(7, 40, 64), nil, Options{PageSize: 4096, BufferPages: 32})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = db.Close() })
			return db
		},
	}
	for name, open := range backends {
		t.Run(name, func(t *testing.T) {
			db := open(t)
			path := filepath.Join(t.TempDir(), "rt.tscap")
			if _, err := EnableCapture(path, CaptureOptions{}); err != nil {
				t.Fatal(err)
			}
			queries := captureMixedWorkload(t, db)
			st := CaptureSnapshot()
			if err := DisableCapture(); err != nil {
				t.Fatal(err)
			}
			if st.Written != int64(queries) || st.Dropped != 0 {
				t.Fatalf("journaled %d of %d queries (dropped %d, last error %q)",
					st.Written, queries, st.Dropped, st.LastError)
			}

			rep, err := ReplayFile(context.Background(), db, path, ReplayOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Records != int64(queries) || rep.Replayed != int64(queries) ||
				rep.Skipped != 0 || rep.Errors != 0 || rep.Mismatches != 0 {
				rep.WriteText(os.Stderr)
				t.Fatalf("replay: records=%d replayed=%d skipped=%d errors=%d mismatches=%d",
					rep.Records, rep.Replayed, rep.Skipped, rep.Errors, rep.Mismatches)
			}
			if rep.CapturedTotals.Matches == 0 {
				t.Error("workload produced no matches; the digest check is vacuous")
			}
			if rep.ReplayedTotals.Matches != rep.CapturedTotals.Matches {
				t.Errorf("replayed %d matches, captured %d",
					rep.ReplayedTotals.Matches, rep.CapturedTotals.Matches)
			}
		})
	}
}

// TestReplayFlatLBOverride pins the PR 6 A/B contract end to end: a
// capture replayed under -set flatlb=true must reproduce every answer
// digest while the lower-bound work moves from the cascade tiers into
// tier 2 (the flat path books every dismissal there).
func TestReplayFlatLBOverride(t *testing.T) {
	db := openTestDB(t, 11, 60, 64)
	ts := MovingAverages(64, 5, 20)
	thr := Correlation(0.96)
	path := filepath.Join(t.TempDir(), "ab.tscap")
	if _, err := EnableCapture(path, CaptureOptions{}); err != nil {
		t.Fatal(err)
	}
	for id := int64(0); id < 10; id++ {
		if _, _, err := db.RangeByID(id, ts, thr, QueryOptions{Algorithm: MTIndex, TransformsPerMBR: 8}); err != nil {
			t.Fatal(err)
		}
	}
	if err := DisableCapture(); err != nil {
		t.Fatal(err)
	}

	rep, err := ReplayFile(context.Background(), db, path, ReplayOptions{
		Override: func(q *QueryOptions) { q.FlatLB = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mismatches != 0 || rep.Errors != 0 || rep.Skipped != 0 {
		rep.WriteText(os.Stderr)
		t.Fatalf("flatlb replay: %d mismatches, %d errors, %d skipped",
			rep.Mismatches, rep.Errors, rep.Skipped)
	}
	cap, got := rep.CapturedTotals, rep.ReplayedTotals
	if cap.SkippedLB() == 0 {
		t.Fatal("workload produced no lower-bound skips; the A/B is vacuous")
	}
	if cap.SkippedLB0+cap.SkippedLB1 == 0 {
		t.Fatal("captured run never skipped in tiers 0/1; pick a workload that exercises the cascade")
	}
	if got.SkippedLB0 != 0 || got.SkippedLB1 != 0 {
		t.Errorf("flat replay still books tier 0/1 skips: %d/%d", got.SkippedLB0, got.SkippedLB1)
	}
	if got.SkippedLB() != cap.SkippedLB() {
		t.Errorf("total lb skips moved: captured %d, flat replay %d — the flat bound must dismiss the same set",
			cap.SkippedLB(), got.SkippedLB())
	}
}

func TestReplayLimit(t *testing.T) {
	db := openTestDB(t, 13, 30, 64)
	ts := MovingAverages(64, 5, 12)
	path := filepath.Join(t.TempDir(), "lim.tscap")
	if _, err := EnableCapture(path, CaptureOptions{}); err != nil {
		t.Fatal(err)
	}
	for id := int64(0); id < 5; id++ {
		if _, _, err := db.RangeByID(id, ts, Correlation(0.95), QueryOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := DisableCapture(); err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayFile(context.Background(), db, path, ReplayOptions{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 2 || rep.Replayed != 2 || !rep.OK() {
		t.Errorf("limited replay: records=%d replayed=%d ok=%v", rep.Records, rep.Replayed, rep.OK())
	}
}

func TestReplayCorruptCapture(t *testing.T) {
	db := openTestDB(t, 17, 30, 64)
	ts := MovingAverages(64, 5, 12)
	path := filepath.Join(t.TempDir(), "bad.tscap")
	if _, err := EnableCapture(path, CaptureOptions{}); err != nil {
		t.Fatal(err)
	}
	for id := int64(0); id < 3; id++ {
		if _, _, err := db.RangeByID(id, ts, Correlation(0.95), QueryOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := DisableCapture(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 0x20 // inside the final frame's CRC: complete frame, bad checksum
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayFile(context.Background(), db, path, ReplayOptions{})
	if !errors.Is(err, capture.ErrCorrupt) {
		t.Fatalf("err=%v, want ErrCorrupt", err)
	}
	if rep == nil || rep.Records != 2 || rep.Mismatches != 0 {
		t.Fatalf("partial report: %+v", rep)
	}
}

// TestReplayAgainstChangedData checks that a by-reference query replays
// only when the referenced series still has the captured content: a
// different database skips (never false-verifies) every row.
func TestReplayAgainstChangedData(t *testing.T) {
	db := openTestDB(t, 19, 30, 64)
	ts := MovingAverages(64, 5, 12)
	path := filepath.Join(t.TempDir(), "moved.tscap")
	if _, err := EnableCapture(path, CaptureOptions{}); err != nil {
		t.Fatal(err)
	}
	for id := int64(0); id < 3; id++ {
		if _, _, err := db.RangeByID(id, ts, Correlation(0.95), QueryOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := DisableCapture(); err != nil {
		t.Fatal(err)
	}

	other := openTestDB(t, 20, 30, 64) // same shape, different content
	rep, err := ReplayFile(context.Background(), other, path, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 3 || rep.Replayed != 0 || rep.Mismatches != 0 {
		rep.WriteText(os.Stderr)
		t.Fatalf("replay against changed data: skipped=%d replayed=%d", rep.Skipped, rep.Replayed)
	}

	// A shrunk database still holds ids 0..1 with the captured content,
	// so those queries re-run — and their answer sets genuinely differ
	// (the candidate universe shrank). The digests must report that
	// divergence, not silently pass; the missing id is skipped.
	small := openTestDB(t, 19, 2, 64)
	rep, err = ReplayFile(context.Background(), small, path, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 2 || rep.Skipped != 1 || rep.Mismatches != 2 || rep.OK() {
		rep.WriteText(os.Stderr)
		t.Fatalf("replay against shrunk data: replayed=%d skipped=%d mismatches=%d",
			rep.Replayed, rep.Skipped, rep.Mismatches)
	}
}

// TestReplaySkipsCapturedErrors synthesizes a journal holding an
// errored query: replay must skip it (the digest is empty by
// construction), not re-fail or false-match.
func TestReplaySkipsCapturedErrors(t *testing.T) {
	db := openTestDB(t, 23, 10, 64)
	path := filepath.Join(t.TempDir(), "err.tscap")
	w, err := capture.NewWriter(path, capture.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.Admit()
	w.Append(&capture.Record{
		QueryID: 1, Kind: capture.KindRange, SeriesID: 0,
		QueryHash: capture.HashFloats(db.Get(0)), Eps: 1,
		Err: "synthetic dispatch failure",
	}, MovingAverages(64, 5, 8))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayFile(context.Background(), db, path, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 1 || rep.Errors != 0 || !rep.OK() {
		t.Fatalf("errored record: skipped=%d errors=%d ok=%v", rep.Skipped, rep.Errors, rep.OK())
	}
}

// TestCaptureDisabledZeroAlloc pins the journal's disabled-path
// contract, mirroring the query log's: with no capture writer installed
// the per-query hook allocates nothing, including after an
// enable/disable cycle.
func TestCaptureDisabledZeroAlloc(t *testing.T) {
	DisableQueryLog()
	DisableResourceAttribution()
	if err := DisableCapture(); err != nil {
		t.Fatal(err)
	}
	db := openTestDB(t, 3, 200, 64)
	ts := MovingAverages(64, 5, 20)
	thr := Correlation(0.95)
	run := func() {
		if _, _, err := db.RangeByID(10, ts, thr, QueryOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	base := testing.AllocsPerRun(20, run)

	if _, err := EnableCapture(filepath.Join(t.TempDir(), "alloc.tscap"), CaptureOptions{}); err != nil {
		t.Fatal(err)
	}
	run()
	if err := DisableCapture(); err != nil {
		t.Fatal(err)
	}

	after := testing.AllocsPerRun(20, run)
	if after > base {
		t.Errorf("disabled path allocates %.0f/op after a capture cycle, %.0f/op before", after, base)
	}
}

// TestCaptureSamplingFacade checks SampleEvery through the public
// facade: the journal sees every query but writes one in three.
func TestCaptureSamplingFacade(t *testing.T) {
	db := openTestDB(t, 29, 30, 64)
	ts := MovingAverages(64, 5, 12)
	path := filepath.Join(t.TempDir(), "sampled.tscap")
	if _, err := EnableCapture(path, CaptureOptions{SampleEvery: 3}); err != nil {
		t.Fatal(err)
	}
	for id := int64(0); id < 9; id++ {
		if _, _, err := db.RangeByID(id, ts, Correlation(0.95), QueryOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	st := CaptureSnapshot()
	if err := DisableCapture(); err != nil {
		t.Fatal(err)
	}
	if st.Seen != 9 || st.Written != 3 || st.SampledOut != 6 {
		t.Errorf("sampling: seen=%d written=%d sampled_out=%d, want 9/3/6", st.Seen, st.Written, st.SampledOut)
	}
	rep, err := ReplayFile(context.Background(), db, path, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 3 || !rep.OK() {
		t.Errorf("sampled replay: records=%d ok=%v", rep.Records, rep.OK())
	}
}

// Benchmark pair pinning the journal overhead on the range path:
// Disabled is the production default (one atomic load), Enabled pays
// digesting, record assembly and a buffered write.
func benchmarkRangeCapture(b *testing.B, enabled bool) {
	DisableQueryLog()
	DisableResourceAttribution()
	_ = DisableCapture()
	db := openTestDB(b, 3, 200, 64)
	ts := MovingAverages(64, 5, 20)
	thr := Correlation(0.95)
	if enabled {
		if _, err := EnableCapture(filepath.Join(b.TempDir(), "bench.tscap"), CaptureOptions{}); err != nil {
			b.Fatal(err)
		}
		defer func() { _ = DisableCapture() }()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.RangeByID(10, ts, thr, QueryOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeCaptureDisabled(b *testing.B) { benchmarkRangeCapture(b, false) }
func BenchmarkRangeCaptureEnabled(b *testing.B)  { benchmarkRangeCapture(b, true) }
