package tsq

// End-to-end sharding tests through the public API: answer parity
// across shard counts on every query surface, the sharded file layout
// (manifest + per-shard files) and its corruption handling, capture
// portability (a workload captured on a 1-shard DB replays digest-clean
// against a 4-shard build), and the shard sections of the health
// endpoint.

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"tsq/internal/datagen"
)

// shardCounts is the sweep every parity test runs over.
var shardCounts = []int{1, 2, 4}

func openShardedTestDB(t testing.TB, seed int64, count, n, shards int) *DB {
	t.Helper()
	db, err := Open(datagen.RandomWalks(seed, count, n), nil, Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func sortNNMatches(ms []NNMatch) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Distance != ms[j].Distance {
			return ms[i].Distance < ms[j].Distance
		}
		if ms[i].RecordID != ms[j].RecordID {
			return ms[i].RecordID < ms[j].RecordID
		}
		return ms[i].TransformIdx < ms[j].TransformIdx
	})
}

func sortJoinMatches(ms []JoinMatch) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].IDA != ms[j].IDA {
			return ms[i].IDA < ms[j].IDA
		}
		if ms[i].IDB != ms[j].IDB {
			return ms[i].IDB < ms[j].IDB
		}
		return ms[i].TransformIdx < ms[j].TransformIdx
	})
}

// TestShardedDBAnswerParity: every public query surface returns the
// same answer at every shard count.
func TestShardedDBAnswerParity(t *testing.T) {
	const n = 64
	base := openShardedTestDB(t, 3, 150, n, 1)
	ts := MovingAverages(n, 5, 20)
	thr := Correlation(0.92)
	q := base.Get(9)

	wantRange := map[Algorithm][]Match{}
	for _, alg := range []Algorithm{MTIndex, STIndex, SeqScan, Auto} {
		m, _, err := base.Range(q, ts, thr, QueryOptions{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		SortMatches(m)
		wantRange[alg] = m
	}
	if len(wantRange[MTIndex]) == 0 {
		t.Fatal("workload produced no matches; parity is vacuous")
	}
	wantNN, _, err := base.NearestNeighbors(q, ts, 5, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sortNNMatches(wantNN)
	wantJoin, _, err := base.Join(ts[:4], thr, QueryOptions{Algorithm: MTIndex})
	if err != nil {
		t.Fatal(err)
	}
	sortJoinMatches(wantJoin)
	wantPairs, _, err := base.ClosestPairs(ts[:4], 5, MTIndex)
	if err != nil {
		t.Fatal(err)
	}
	wantRaw, _, err := base.RawRange(q, 25, true)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(wantRaw, func(i, j int) bool { return wantRaw[i].RecordID < wantRaw[j].RecordID })

	for _, shards := range shardCounts[1:] {
		db := openShardedTestDB(t, 3, 150, n, shards)
		if db.Shards() != shards {
			t.Fatalf("Shards() = %d, want %d", db.Shards(), shards)
		}
		info, err := db.Info()
		if err != nil {
			t.Fatal(err)
		}
		if info.Shards != shards || info.Series != 150 {
			t.Fatalf("Info = %+v", info)
		}
		for alg, want := range wantRange {
			got, _, err := db.Range(q, ts, thr, QueryOptions{Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			SortMatches(got)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%d shards %v: range mismatch (%d vs %d)", shards, alg, len(got), len(want))
			}
		}
		gotNN, _, err := db.NearestNeighbors(q, ts, 5, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sortNNMatches(gotNN)
		if !reflect.DeepEqual(gotNN, wantNN) {
			t.Errorf("%d shards: NN mismatch\n got %+v\nwant %+v", shards, gotNN, wantNN)
		}
		gotJoin, _, err := db.Join(ts[:4], thr, QueryOptions{Algorithm: MTIndex})
		if err != nil {
			t.Fatal(err)
		}
		sortJoinMatches(gotJoin)
		if !reflect.DeepEqual(gotJoin, wantJoin) {
			t.Errorf("%d shards: join mismatch (%d vs %d)", shards, len(gotJoin), len(wantJoin))
		}
		gotPairs, _, err := db.ClosestPairs(ts[:4], 5, MTIndex)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotPairs, wantPairs) {
			t.Errorf("%d shards: closest pairs mismatch\n got %+v\nwant %+v", shards, gotPairs, wantPairs)
		}
		gotRaw, _, err := db.RawRange(q, 25, true)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotRaw, wantRaw) {
			t.Errorf("%d shards: raw range mismatch", shards)
		}
		if _, err := db.Explain(q, ts, thr); err != nil {
			t.Errorf("%d shards: explain: %v", shards, err)
		}
		if err := db.Verify(); err != nil {
			t.Errorf("%d shards: verify: %v", shards, err)
		}

		// Batch runs through the executor over the sharded engine.
		reqs := []BatchRequest{
			{ByID: true, ID: 9, Transforms: ts, Threshold: thr},
			{Query: q, Transforms: ts, K: 5},
			{ByID: true, ID: 3, Transforms: ts, Threshold: thr, Opts: QueryOptions{Algorithm: SeqScan}},
		}
		res := db.Batch(context.Background(), reqs, 2)
		baseRes := base.Batch(context.Background(), reqs, 2)
		for i := range res {
			if res[i].Err != nil || baseRes[i].Err != nil {
				t.Fatalf("%d shards: batch[%d] err %v / %v", shards, i, res[i].Err, baseRes[i].Err)
			}
			gm, wm := res[i].Matches, baseRes[i].Matches
			SortMatches(gm)
			SortMatches(wm)
			if !reflect.DeepEqual(gm, wm) {
				t.Errorf("%d shards: batch[%d] range mismatch", shards, i)
			}
			gn, wn := res[i].NN, baseRes[i].NN
			sortNNMatches(gn)
			sortNNMatches(wn)
			if !reflect.DeepEqual(gn, wn) {
				t.Errorf("%d shards: batch[%d] NN mismatch", shards, i)
			}
		}
	}
}

// TestShardedFileRoundTrip: CreateFile with Shards writes per-shard
// page files behind a manifest, OpenFile reassembles them, answers
// match the single-file build, and the scrubber passes the set.
func TestShardedFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ss := datagen.RandomWalks(21, 120, 64)
	ts := MovingAverages(64, 5, 16)
	thr := Correlation(0.92)

	single, err := CreateFile(filepath.Join(dir, "single.tsq"), ss, nil, Options{PageSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	q := single.Get(7)
	want, _, err := single.Range(q, ts, thr, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	SortMatches(want)

	path := filepath.Join(dir, "sharded.tsq")
	db, err := CreateFile(path, ss, nil, Options{PageSize: 2048, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	info, err := db.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Shards != 4 || !info.Paged {
		t.Fatalf("Info = %+v", info)
	}
	got, _, err := db.Range(q, ts, thr, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	SortMatches(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("created sharded file: range mismatch (%d vs %d)", len(got), len(want))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// The on-disk layout: a tiny manifest plus 4 complete shard files.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() >= 2048 {
		t.Errorf("manifest is %d bytes; expected a small record, not a page file", st.Size())
	}
	for i := 0; i < 4; i++ {
		if _, err := os.Stat(shardPath(path, i)); err != nil {
			t.Errorf("shard file %d missing: %v", i, err)
		}
	}

	re, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Shards() != 4 || re.Len() != 120 {
		t.Fatalf("reopened: Shards=%d Len=%d", re.Shards(), re.Len())
	}
	got2, _, err := re.Range(q, ts, thr, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	SortMatches(got2)
	if !reflect.DeepEqual(got2, want) {
		t.Fatalf("reopened sharded file: range mismatch")
	}
	if err := re.Verify(); err != nil {
		t.Fatal(err)
	}

	// Inserts route through the manifest-less layout (the mapping is a
	// pure function of the count, so no metadata goes stale).
	id, err := re.Insert("new", datagen.RandomWalks(5, 1, 64)[0])
	if err != nil {
		t.Fatal(err)
	}
	if id != 120 {
		t.Fatalf("insert assigned id %d, want 120", id)
	}
	if err := re.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen again: the inserted record must be back, on its shard.
	re2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.Len() != 121 {
		t.Fatalf("after insert+reopen: Len=%d, want 121", re2.Len())
	}
	if err := re2.Verify(); err != nil {
		t.Fatal(err)
	}

	r, err := CheckFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Fatalf("scrub of healthy sharded DB:\n%s", r)
	}
	if r.ShardCount != 4 || len(r.Shards) != 4 {
		t.Fatalf("scrub report: ShardCount=%d len(Shards)=%d", r.ShardCount, len(r.Shards))
	}
}

// TestShardedFileCorruption: every way a shard set can be damaged must
// surface as a shard-identifying rejection, never a partially-visible
// or silently-wrong database.
func TestShardedFileCorruption(t *testing.T) {
	newSharded := func(t *testing.T) string {
		dir := t.TempDir()
		path := filepath.Join(dir, "c.tsq")
		db, err := CreateFile(path, datagen.RandomWalks(33, 60, 32), nil, Options{PageSize: 2048, Shards: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}

	t.Run("missing-shard-file", func(t *testing.T) {
		path := newSharded(t)
		if err := os.Remove(shardPath(path, 1)); err != nil {
			t.Fatal(err)
		}
		_, err := OpenFile(path)
		if err == nil {
			t.Fatal("opened with a missing shard file")
		}
		if !strings.Contains(err.Error(), "shard 1") {
			t.Errorf("error does not name the shard: %v", err)
		}
		r, cerr := CheckFile(path)
		if cerr != nil {
			t.Fatal(cerr)
		}
		if r.OK() {
			t.Fatalf("scrub says OK with a missing shard:\n%s", r)
		}
	})

	t.Run("torn-manifest", func(t *testing.T) {
		path := newSharded(t)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[20] ^= 0xff // flags byte: CRC must catch it
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenFile(path); err == nil || !strings.Contains(err.Error(), "manifest") {
			t.Fatalf("torn manifest not rejected: %v", err)
		}
		r, cerr := CheckFile(path)
		if cerr != nil {
			t.Fatal(cerr)
		}
		if r.OK() || r.ManifestErr == "" {
			t.Fatalf("scrub missed the torn manifest:\n%s", r)
		}
	})

	t.Run("truncated-manifest", func(t *testing.T) {
		path := newSharded(t)
		if err := os.Truncate(path, 10); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenFile(path); err == nil {
			t.Fatal("truncated manifest opened")
		}
	})

	t.Run("swapped-shard-files", func(t *testing.T) {
		// Two shard files exchanged: each opens standalone, but the
		// record counts contradict the partition function.
		path := newSharded(t)
		a, b := shardPath(path, 0), shardPath(path, 1)
		tmp := a + ".tmp"
		if err := os.Rename(a, tmp); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(b, a); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(tmp, b); err != nil {
			t.Fatal(err)
		}
		db, err := OpenFile(path)
		if err == nil {
			// The swap is undetectable by counts only if both shards
			// hold the same number of records; the ids would then
			// disagree, which Verify must catch.
			verr := db.Verify()
			_ = db.Close()
			if verr == nil {
				t.Fatal("swapped shard files opened and verified clean")
			}
		} else if !strings.Contains(err.Error(), "shard") {
			t.Errorf("error does not name a shard: %v", err)
		}
	})

	t.Run("corrupt-shard-page", func(t *testing.T) {
		path := newSharded(t)
		sp := shardPath(path, 2)
		f, err := os.OpenFile(sp, os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Flip a byte mid-file: a page CRC in shard 2 must fail.
		if _, err := f.WriteAt([]byte{0xff}, 3*2048+100); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		r, cerr := CheckFile(path)
		if cerr != nil {
			t.Fatal(cerr)
		}
		if r.OK() {
			t.Fatalf("scrub missed a flipped byte in shard 2:\n%s", r)
		}
		if len(r.Shards) == 3 && r.Shards[2].OK() && r.OpenErr == "" && r.IntegrityErr == "" {
			t.Errorf("corruption not attributed to shard 2:\n%s", r)
		}
	})
}

// TestShardedCapturePortability is the workload-portability contract: a
// capture taken on a 1-shard database replays digest-clean against a
// 4-shard build of the same data — the order-insensitive digests pin
// answer equality across engine layouts.
func TestShardedCapturePortability(t *testing.T) {
	ss := datagen.RandomWalks(7, 80, 64)
	one, err := Open(ss, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := MovingAverages(64, 5, 20)
	thr := Correlation(0.94)

	path := filepath.Join(t.TempDir(), "portable.tscap")
	if _, err := EnableCapture(path, CaptureOptions{}); err != nil {
		t.Fatal(err)
	}
	queries := 0
	for id := int64(0); id < 6; id++ {
		alg := []Algorithm{MTIndex, STIndex, SeqScan}[id%3]
		if _, _, err := one.RangeByID(id, ts, thr, QueryOptions{Algorithm: alg}); err != nil {
			t.Fatal(err)
		}
		queries++
	}
	q := one.Get(11)
	if _, _, err := one.NearestNeighbors(q, ts, 5, QueryOptions{}); err != nil {
		t.Fatal(err)
	}
	queries++
	if err := DisableCapture(); err != nil {
		t.Fatal(err)
	}

	four, err := Open(ss, nil, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayFile(context.Background(), four, path, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != int64(queries) || rep.Mismatches != 0 || rep.Errors != 0 || rep.Skipped != 0 {
		rep.WriteText(os.Stderr)
		t.Fatalf("cross-shard replay: records=%d mismatches=%d errors=%d skipped=%d",
			rep.Records, rep.Mismatches, rep.Errors, rep.Skipped)
	}
	if rep.CapturedTotals.Matches == 0 {
		t.Fatal("captured workload produced no matches; the digest check is vacuous")
	}
}

// TestShardedIndexEndpoint: /index serves the combined report with
// per-shard sections, and ?shard=N narrows to one shard.
func TestShardedIndexEndpoint(t *testing.T) {
	db := openShardedTestDB(t, 41, 90, 32, 3)
	ts := MovingAverages(32, 3, 8)
	h := IndexHandler(db, ts, nil)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/index?format=text", nil))
	body := rec.Body.String()
	if rec.Code != 200 || !strings.Contains(body, "sharded: 3 shards") {
		t.Fatalf("combined report: code=%d body:\n%s", rec.Code, body)
	}
	if !strings.Contains(body, "shard 2:") {
		t.Errorf("combined text report missing per-shard sections:\n%s", body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/index?shard=1&format=text", nil))
	if rec.Code != 200 {
		t.Fatalf("shard=1: code=%d", rec.Code)
	}
	if strings.Contains(rec.Body.String(), "sharded:") {
		t.Errorf("shard=1 returned the combined report:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/index?shard=7", nil))
	if rec.Code != 400 {
		t.Errorf("out-of-range shard: code=%d, want 400", rec.Code)
	}

	// Unsharded DBs reject the parameter too (no Shards section).
	h1 := IndexHandler(openTestDB(t, 41, 20, 32), ts, nil)
	rec = httptest.NewRecorder()
	h1.ServeHTTP(rec, httptest.NewRequest("GET", "/index?shard=0", nil))
	if rec.Code != 400 {
		t.Errorf("shard param on unsharded DB: code=%d, want 400", rec.Code)
	}
}

// TestShardedHealthText: DB.IndexHealth on a sharded database carries
// the rollup plus per-shard reports (the tsquery -inspect surface).
func TestShardedIndexHealth(t *testing.T) {
	db := openShardedTestDB(t, 43, 70, 32, 2)
	hr, err := db.IndexHealth(context.Background(), MovingAverages(32, 3, 8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if hr.ShardCount != 2 || len(hr.Shards) != 2 {
		t.Fatalf("ShardCount=%d len(Shards)=%d", hr.ShardCount, len(hr.Shards))
	}
	if hr.Shards[0].Series+hr.Shards[1].Series != 70 {
		t.Fatalf("shard series sum %d, want 70", hr.Shards[0].Series+hr.Shards[1].Series)
	}
	text := hr.String()
	for _, want := range []string{"sharded: 2 shards", "shard 0:", "shard 1:", "transformation groups"} {
		if !strings.Contains(text, want) {
			t.Errorf("health text missing %q:\n%s", want, text)
		}
	}
}
