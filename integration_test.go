package tsq

// Cross-configuration integration tests: the answer to a similarity query
// is defined by the data, the transformation set and the threshold — not
// by page sizes, buffer pools, partitioning, coefficient counts, paged
// record storage, or the query rectangle mode. Every configuration must
// return exactly the same (record, transformation) sets.

import (
	"path/filepath"
	"testing"

	"tsq/internal/datagen"
)

type rangeConfig struct {
	name string
	open func(t *testing.T, ss []Series) *DB
	opts QueryOptions
}

func TestRangeAnswersInvariantAcrossConfigurations(t *testing.T) {
	const n = 64
	ss := datagen.StockMarket(90, 250, n, datagen.DefaultMarketOptions())
	ts := MovingAverages(n, 4, 18)
	thr := Correlation(0.93)

	mem := func(opts Options) func(*testing.T, []Series) *DB {
		return func(t *testing.T, ss []Series) *DB {
			db, err := Open(ss, nil, opts)
			if err != nil {
				t.Fatal(err)
			}
			return db
		}
	}
	configs := []rangeConfig{
		{"baseline", mem(Options{}), QueryOptions{}},
		{"small-pages", mem(Options{PageSize: 512}), QueryOptions{}},
		{"large-pages", mem(Options{PageSize: 8192}), QueryOptions{}},
		{"k1", mem(Options{K: 1}), QueryOptions{}},
		{"k4", mem(Options{K: 4}), QueryOptions{}},
		{"no-symmetry", mem(Options{DisableSymmetry: true}), QueryOptions{}},
		{"buffered", mem(Options{BufferPages: 64}), QueryOptions{}},
		{"bulk-loaded", mem(Options{BulkLoad: true}), QueryOptions{}},
		{"seqscan", mem(Options{}), QueryOptions{Algorithm: SeqScan}},
		{"st-index", mem(Options{}), QueryOptions{Algorithm: STIndex}},
		{"grouped-3", mem(Options{}), QueryOptions{TransformsPerMBR: 3}},
		{"clustered", mem(Options{}), QueryOptions{ClusterPartition: true, TransformsPerMBR: 5}},
		{"file-backed", func(t *testing.T, ss []Series) *DB {
			db, err := CreateFile(filepath.Join(t.TempDir(), "x.tsq"), ss, nil, Options{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { db.Close() })
			return db
		}, QueryOptions{}},
	}

	type key struct {
		rec int64
		tr  int
	}
	var want map[key]bool
	queries := []int64{0, 17, 123, 249}
	answers := func(db *DB, opts QueryOptions) map[key]bool {
		out := make(map[key]bool)
		for _, q := range queries {
			ms, _, err := db.RangeByID(q, ts, thr, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range ms {
				out[key{m.RecordID*1000 + q, m.TransformIdx}] = true
			}
		}
		return out
	}
	for i, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			db := cfg.open(t, ss)
			got := answers(db, cfg.opts)
			if i == 0 {
				want = got
				if len(want) == 0 {
					t.Fatal("baseline produced no matches; test is vacuous")
				}
				return
			}
			if len(got) != len(want) {
				t.Fatalf("%s: %d matches, baseline %d", cfg.name, len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("%s: missing %v", cfg.name, k)
				}
			}
		})
	}

	// The paper's plain eps-box is the one configuration that may dismiss
	// matches (phases are not coordinates of an isometric embedding). It
	// must never fabricate any; on this workload it does in fact drop a
	// small fraction — the false-dismissal risk the safe rectangle
	// removes.
	t.Run("paper-rect-subset", func(t *testing.T) {
		db := mem(Options{})(t, ss)
		got := answers(db, QueryOptions{PaperQueryRect: true})
		for k := range got {
			if !want[k] {
				t.Fatalf("paper rect fabricated %v", k)
			}
		}
		if missing := len(want) - len(got); missing > 0 {
			t.Logf("paper rect dismissed %d of %d matches (expected hazard of the plain box)", missing, len(want))
		}
	})
}

func TestPipelineEqualsManualComposition(t *testing.T) {
	// Rewriting "shift | mv" into a flat set (Sec. 3.3) must answer like
	// evaluating the two-stage predicate by hand.
	const n = 64
	ss := datagen.RandomWalks(91, 150, n)
	db, err := Open(ss, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ParsePipeline("shift(0..3) | mv(2..6)", n)
	if err != nil {
		t.Fatal(err)
	}
	flat := p.Flatten()
	thr := Correlation(0.9)
	got, _, err := db.RangeByID(5, flat, thr, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Manual: for each record and (s, m) combination, compose explicitly.
	var manual int
	eps := thr.Epsilon(n)
	for id := int64(0); id < int64(db.Len()); id++ {
		r := db.NormalForm(id)
		q := db.NormalForm(5)
		for s := 0; s <= 3; s++ {
			for m := 2; m <= 6; m++ {
				tr := Compose(MovingAverage(n, m), TimeShift(n, s))
				a := tr.ApplySeries(r)
				b := tr.ApplySeries(q)
				if EuclideanDistance(a, b) <= eps {
					manual++
				}
			}
		}
	}
	if len(got) != manual {
		t.Fatalf("pipeline answered %d, manual composition %d", len(got), manual)
	}
}

func TestStatsAreConsistent(t *testing.T) {
	ss := datagen.RandomWalks(92, 400, 64)
	db, err := Open(ss, nil, Options{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	ts := MovingAverages(64, 5, 16)
	for _, opts := range []QueryOptions{
		{Algorithm: MTIndex},
		{Algorithm: MTIndex, TransformsPerMBR: 4},
		{Algorithm: STIndex},
	} {
		_, st, err := db.RangeByID(3, ts, Correlation(0.9), opts)
		if err != nil {
			t.Fatal(err)
		}
		if st.DALeaf > st.DAAll {
			t.Errorf("%+v: leaf accesses %d exceed total %d", opts, st.DALeaf, st.DAAll)
		}
		if st.Comparisons < st.Candidates {
			t.Errorf("%+v: comparisons %d below candidates %d", opts, st.Comparisons, st.Candidates)
		}
		if st.IndexSearches < 1 {
			t.Errorf("%+v: no index searches recorded", opts)
		}
	}
}

func TestLargeScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale smoke test")
	}
	// The Fig. 5 upper point end to end: 12000 sequences.
	ss := datagen.RandomWalks(93, 12000, 128)
	db, err := Open(ss, nil, Options{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	ts := MovingAverages(128, 10, 25)
	thr := Correlation(0.96)
	mt, stMT, err := db.RangeByID(999, ts, thr, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seq, _, err := db.RangeByID(999, ts, thr, QueryOptions{Algorithm: SeqScan})
	if err != nil {
		t.Fatal(err)
	}
	if len(mt) != len(seq) {
		t.Fatalf("MT %d vs seqscan %d at scale", len(mt), len(seq))
	}
	if stMT.Candidates >= db.Len()/2 {
		t.Errorf("MT verified %d of %d records; index not filtering at scale", stMT.Candidates, db.Len())
	}
}
