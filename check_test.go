package tsq

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tsq/internal/datagen"
)

// makeCheckedFile creates a small database file and returns its path.
func makeCheckedFile(t *testing.T, opts Options) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "check.tsq")
	ss := datagen.RandomWalks(21, 40, 32)
	db, err := CreateFile(path, ss, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckFileCleanDatabase(t *testing.T) {
	path := makeCheckedFile(t, Options{PageSize: 4096})
	r, err := CheckFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Fatalf("clean file reported corrupt:\n%s", r)
	}
	if !r.Checksummed {
		t.Error("new files should be checksummed by default")
	}
	if r.Scanned != r.Pages-1 {
		t.Errorf("scanned %d of %d pages (page 0 is the header region)", r.Scanned, r.Pages)
	}
	if !strings.Contains(r.String(), "result: OK") {
		t.Errorf("report rendering:\n%s", r)
	}
}

func TestCheckFileUncheckedFormat(t *testing.T) {
	path := makeCheckedFile(t, Options{PageSize: 4096, DisableChecksums: true})
	r, err := CheckFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Fatalf("clean pre-checksum-format file reported corrupt:\n%s", r)
	}
	if r.Checksummed || r.Scanned != 0 {
		t.Errorf("Checksummed=%v Scanned=%d for a flagless file", r.Checksummed, r.Scanned)
	}
}

func TestCheckFileDetectsBitFlip(t *testing.T) {
	path := makeCheckedFile(t, Options{PageSize: 4096})
	// Flip one byte mid-file — inside some record or node page.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	corruptOff := st.Size() / 2
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, corruptOff); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0x40
	if _, err := f.WriteAt(buf, corruptOff); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := CheckFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.OK() {
		t.Fatalf("bit flip not caught:\n%s", r)
	}
	wantPage := int(corruptOff) / r.PageSize
	found := false
	for _, p := range r.BadPages {
		if int(p) == wantPage {
			found = true
		}
	}
	if !found {
		t.Errorf("bad page %d not in report %v", wantPage, r.BadPages)
	}
	// The read path detects the same corruption when the damaged page is
	// actually fetched: a full scan of all records must fail.
	if db, err := OpenFile(path); err == nil {
		if verr := db.Verify(); verr == nil {
			t.Error("Verify passed on a checksum-corrupt file")
		}
		_ = db.Close()
	}
}

func TestCheckFileDetectsTornTail(t *testing.T) {
	path := makeCheckedFile(t, Options{PageSize: 4096})
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-1000); err != nil {
		t.Fatal(err)
	}
	r, err := CheckFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.OK() {
		t.Fatalf("torn tail not caught:\n%s", r)
	}
	if r.TailBytes == 0 {
		t.Errorf("TailBytes = 0 after truncating to a non-page boundary")
	}
}

func TestCheckFileRejectsMissingHeader(t *testing.T) {
	// A crash before the raw-header commit record leaves a magic-less
	// file: CheckFile reports it rather than erroring or panicking.
	path := filepath.Join(t.TempDir(), "headerless.tsq")
	if err := os.WriteFile(path, make([]byte, 8192), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := CheckFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.OK() || r.HeaderErr == "" {
		t.Fatalf("magic-less file passed the scrub:\n%s", r)
	}
	// A missing file, by contrast, is an error: nothing to scrub.
	if _, err := CheckFile(filepath.Join(t.TempDir(), "nope.tsq")); err == nil {
		t.Error("CheckFile on a missing file returned no error")
	}
}

func TestUncheckedFormatAnswersIdentically(t *testing.T) {
	// The pre-checksum format must keep answering queries bit-identically
	// to the checksummed format for the same data.
	dir := t.TempDir()
	ss := datagen.StockMarket(31, 80, 64, datagen.DefaultMarketOptions())
	run := func(opts Options, path string) []Match {
		db, err := CreateFile(path, ss, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		re, err := OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		ms, _, err := re.Range(re.Get(3), MovingAverages(64, 5, 15), Correlation(0.9), QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	plain := run(Options{PageSize: 4096, DisableChecksums: true}, filepath.Join(dir, "plain.tsq"))
	summed := run(Options{PageSize: 4096}, filepath.Join(dir, "summed.tsq"))
	if len(plain) != len(summed) {
		t.Fatalf("formats disagree: %d vs %d matches", len(plain), len(summed))
	}
	for i := range plain {
		if plain[i] != summed[i] {
			t.Fatalf("match %d differs across formats: %+v vs %+v", i, plain[i], summed[i])
		}
	}
}
