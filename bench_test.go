package tsq

// One testing.B benchmark per figure of the paper's evaluation, plus the
// ablation benchmarks DESIGN.md calls out. Absolute times are machine
// numbers; the custom metrics (disk accesses, comparisons, output size)
// are machine-independent and are what EXPERIMENTS.md records against the
// paper. The full sweeps with all the paper's parameter points run via
// cmd/tsbench; these benchmarks pin one representative point per figure
// so `go test -bench` regenerates every experiment in bounded time.

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"tsq/internal/datagen"
)

const benchLen = 128

func benchDB(b *testing.B, ss []Series, opts Options) *DB {
	b.Helper()
	db, err := Open(ss, nil, opts)
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// runRangeBench runs one algorithm over rotating query ids and reports
// per-query disk accesses (Eq. 18 accounting), comparisons and output.
func runRangeBench(b *testing.B, db *DB, ts []Transform, thr Threshold, opts QueryOptions) {
	b.Helper()
	b.ResetTimer()
	var total Stats
	var out int
	for i := 0; i < b.N; i++ {
		id := int64(i*37) % int64(db.Len())
		ms, st, err := db.RangeByID(id, ts, thr, opts)
		if err != nil {
			b.Fatal(err)
		}
		total.Add(st)
		out += len(ms)
	}
	b.ReportMetric(float64(total.DAAll+total.Candidates)/float64(b.N), "disk/query")
	b.ReportMetric(float64(total.Comparisons)/float64(b.N), "cmp/query")
	b.ReportMetric(float64(out)/float64(b.N), "out/query")
}

// BenchmarkFig5 pins the Fig. 5 point at 12000 synthetic sequences with
// 16 moving averages (10..25-day), one sub-benchmark per algorithm.
func BenchmarkFig5(b *testing.B) {
	for _, count := range []int{2000, 12000} {
		ss := datagen.RandomWalks(1999, count, benchLen)
		db := benchDB(b, ss, Options{PageSize: 1024})
		ts := MovingAverages(benchLen, 10, 25)
		thr := Correlation(0.96)
		for _, alg := range []Algorithm{SeqScan, STIndex, MTIndex} {
			b.Run(fmt.Sprintf("n=%d/%v", count, alg), func(b *testing.B) {
				runRangeBench(b, db, ts, thr, QueryOptions{Algorithm: alg})
			})
		}
	}
}

// BenchmarkFig6 pins the Fig. 6 point at 1068 stocks and 30 moving
// averages (5..34-day).
func BenchmarkFig6(b *testing.B) {
	ss := datagen.StockMarket(1999, 1068, benchLen, datagen.DefaultMarketOptions())
	db := benchDB(b, ss, Options{PageSize: 1024})
	thr := Correlation(0.96)
	for _, nt := range []int{5, 30} {
		ts := MovingAverages(benchLen, 5, 5+nt-1)
		for _, alg := range []Algorithm{SeqScan, STIndex, MTIndex} {
			b.Run(fmt.Sprintf("T=%d/%v", nt, alg), func(b *testing.B) {
				runRangeBench(b, db, ts, thr, QueryOptions{Algorithm: alg})
			})
		}
	}
}

// BenchmarkFig7 pins the Fig. 7 join at 1068 stocks, correlation 0.99,
// with 10 moving averages (the paper sweeps 1..30).
func BenchmarkFig7(b *testing.B) {
	ss := datagen.StockMarket(1999, 1068, benchLen, datagen.DefaultMarketOptions())
	db := benchDB(b, ss, Options{PageSize: 1024})
	ts := MovingAverages(benchLen, 5, 14)
	thr := Correlation(0.99)
	for _, alg := range []Algorithm{SeqScan, STIndex, MTIndex} {
		b.Run(alg.String(), func(b *testing.B) {
			b.ResetTimer()
			var total Stats
			var out int
			for i := 0; i < b.N; i++ {
				ms, st, err := db.Join(ts, thr, QueryOptions{Algorithm: alg})
				if err != nil {
					b.Fatal(err)
				}
				total.Add(st)
				out += len(ms)
			}
			b.ReportMetric(float64(total.DAAll)/float64(b.N), "disk/join")
			b.ReportMetric(float64(total.Comparisons)/float64(b.N), "cmp/join")
			b.ReportMetric(float64(out)/float64(b.N), "out/join")
		})
	}
}

// BenchmarkFig8 sweeps transformations-per-MBR over the Fig. 8 set
// (MV 6..29) at the paper's interesting packings.
func BenchmarkFig8(b *testing.B) {
	ss := datagen.StockMarket(1999, 1068, benchLen, datagen.DefaultMarketOptions())
	db := benchDB(b, ss, Options{PageSize: 1024})
	ts := MovingAverages(benchLen, 6, 29)
	thr := Correlation(0.96)
	for _, per := range []int{1, 4, 8, 24} {
		b.Run(fmt.Sprintf("perMBR=%d", per), func(b *testing.B) {
			runRangeBench(b, db, ts, thr, QueryOptions{TransformsPerMBR: per})
		})
	}
}

// BenchmarkFig9 sweeps the two-cluster set (MV 6..29 plus inversions):
// the 16-per-MBR packing spans the inter-cluster gap and bumps, the
// cluster-aware partitioner avoids it.
func BenchmarkFig9(b *testing.B) {
	ss := datagen.StockMarket(1999, 1068, benchLen, datagen.DefaultMarketOptions())
	db := benchDB(b, ss, Options{PageSize: 1024})
	ts := WithInverted(MovingAverages(benchLen, 6, 29))
	thr := Correlation(0.96)
	for _, per := range []int{8, 12, 16, 24, 48} {
		b.Run(fmt.Sprintf("perMBR=%d", per), func(b *testing.B) {
			runRangeBench(b, db, ts, thr, QueryOptions{TransformsPerMBR: per})
		})
	}
	b.Run("clustered8", func(b *testing.B) {
		runRangeBench(b, db, ts, thr, QueryOptions{ClusterPartition: true, TransformsPerMBR: 8})
	})
}

// Ablations ---------------------------------------------------------------

// BenchmarkAblationSymmetry measures the thesis' symmetry-property claim:
// the sqrt(2)-tighter search bound roughly halves the candidate work.
func BenchmarkAblationSymmetry(b *testing.B) {
	ss := datagen.StockMarket(1999, 1068, benchLen, datagen.DefaultMarketOptions())
	ts := MovingAverages(benchLen, 5, 20)
	thr := Correlation(0.96)
	for _, disable := range []bool{false, true} {
		name := "on"
		if disable {
			name = "off"
		}
		db := benchDB(b, ss, Options{PageSize: 1024, DisableSymmetry: disable})
		b.Run("symmetry="+name, func(b *testing.B) {
			runRangeBench(b, db, ts, thr, QueryOptions{})
		})
	}
}

// BenchmarkAblationQueryRect compares the provably-safe query rectangle
// against the paper's plain eps-box.
func BenchmarkAblationQueryRect(b *testing.B) {
	ss := datagen.StockMarket(1999, 1068, benchLen, datagen.DefaultMarketOptions())
	db := benchDB(b, ss, Options{PageSize: 1024})
	ts := MovingAverages(benchLen, 5, 20)
	thr := Correlation(0.96)
	for _, paper := range []bool{false, true} {
		name := "safe"
		if paper {
			name = "paper"
		}
		b.Run("qrect="+name, func(b *testing.B) {
			runRangeBench(b, db, ts, thr, QueryOptions{PaperQueryRect: paper})
		})
	}
}

// BenchmarkAblationK varies the number of indexed DFT coefficients.
func BenchmarkAblationK(b *testing.B) {
	ss := datagen.StockMarket(1999, 1068, benchLen, datagen.DefaultMarketOptions())
	ts := MovingAverages(benchLen, 5, 20)
	thr := Correlation(0.96)
	for _, k := range []int{1, 2, 3, 4} {
		db := benchDB(b, ss, Options{PageSize: 1024, K: k})
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			runRangeBench(b, db, ts, thr, QueryOptions{})
		})
	}
}

// BenchmarkAblationBufferPool shows warm-cache behaviour: with a buffer
// pool, repeated queries hit memory and backend reads drop.
func BenchmarkAblationBufferPool(b *testing.B) {
	ss := datagen.StockMarket(1999, 1068, benchLen, datagen.DefaultMarketOptions())
	ts := MovingAverages(benchLen, 5, 20)
	thr := Correlation(0.96)
	for _, pages := range []int{0, 16, 256} {
		db := benchDB(b, ss, Options{PageSize: 1024, BufferPages: pages})
		b.Run(fmt.Sprintf("bufpages=%d", pages), func(b *testing.B) {
			db.ResetDiskStats()
			runRangeBench(b, db, ts, thr, QueryOptions{})
			st := db.DiskStats()
			b.ReportMetric(float64(st.Reads)/float64(b.N), "backend-reads/query")
			b.ReportMetric(float64(st.Hits)/float64(b.N), "buffer-hits/query")
		})
	}
}

// BenchmarkAblationOrdering measures the Sec. 4.4 binary search on an
// orderable (scale) transformation set against linear evaluation.
func BenchmarkAblationOrdering(b *testing.B) {
	ss := datagen.RandomWalks(1999, 1068, benchLen)
	db := benchDB(b, ss, Options{PageSize: 1024})
	factors := make([]float64, 64)
	for i := range factors {
		factors[i] = 1 + 0.25*float64(i)
	}
	ts := Scales(benchLen, factors)
	thr := Distance(40)
	for _, ordering := range []bool{false, true} {
		name := "linear"
		if ordering {
			name = "binary"
		}
		b.Run("eval="+name, func(b *testing.B) {
			runRangeBench(b, db, ts, thr, QueryOptions{Algorithm: SeqScan, UseOrdering: ordering})
		})
	}
}

// BenchmarkAblationPartitioner compares equal, cluster-aware, and
// cost-model-optimal partitioning on the two-cluster workload.
func BenchmarkAblationPartitioner(b *testing.B) {
	ss := datagen.StockMarket(1999, 1068, benchLen, datagen.DefaultMarketOptions())
	db := benchDB(b, ss, Options{PageSize: 1024})
	ts := WithInverted(MovingAverages(benchLen, 6, 29))
	thr := Correlation(0.96)
	b.Run("equal16", func(b *testing.B) {
		runRangeBench(b, db, ts, thr, QueryOptions{TransformsPerMBR: 16})
	})
	b.Run("cluster8", func(b *testing.B) {
		runRangeBench(b, db, ts, thr, QueryOptions{ClusterPartition: true, TransformsPerMBR: 8})
	})
}

// BenchmarkSubsequence compares the trail index against the brute-force
// scan for subsequence matching (the FRM '94 extension).
func BenchmarkSubsequence(b *testing.B) {
	ss := datagen.StockMarket(1999, 400, benchLen, datagen.DefaultMarketOptions())
	norms := make([]Series, len(ss))
	for i, s := range ss {
		norms[i], _, _ = Normalize(s)
	}
	ix, err := NewSubsequenceIndex(norms, SubseqOptions{Window: 24, PageSize: 1024})
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]Series, 16)
	for i := range queries {
		src := norms[(i*31)%len(norms)]
		off := (i * 13) % (benchLen - 24)
		queries[i] = src[off : off+24]
	}
	b.Run("index", func(b *testing.B) {
		var cand int
		for i := 0; i < b.N; i++ {
			_, st, err := ix.Search(queries[i%len(queries)], 0.8)
			if err != nil {
				b.Fatal(err)
			}
			cand += st.Candidates
		}
		b.ReportMetric(float64(cand)/float64(b.N), "windows-verified/query")
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ScanSubsequences(norms, queries[i%len(queries)], 0.8)
		}
	})
}

// BenchmarkJoinPartitioned shows the Sec. 4.3 fix for the Fig. 7 join
// crossover: multiple rectangles restore MT's advantage at large |T|.
func BenchmarkJoinPartitioned(b *testing.B) {
	ss := datagen.StockMarket(1999, 600, benchLen, datagen.DefaultMarketOptions())
	db := benchDB(b, ss, Options{PageSize: 1024})
	ts := MovingAverages(benchLen, 5, 34) // 30 transforms: past the crossover
	thr := Correlation(0.99)
	for _, per := range []int{0, 8} {
		name := "one-rect"
		if per > 0 {
			name = fmt.Sprintf("per%d", per)
		}
		b.Run("MT-"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := db.Join(ts, thr, QueryOptions{TransformsPerMBR: per}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("ST", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := db.Join(ts, thr, QueryOptions{Algorithm: STIndex}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRangeAllocs counts per-query heap allocations of an MT-index
// range query end to end — the plan cache and pooled scratch buffers keep
// the DFT stage out of this number.
func BenchmarkRangeAllocs(b *testing.B) {
	ss := datagen.RandomWalks(1999, 1000, benchLen)
	db := benchDB(b, ss, Options{PageSize: 1024})
	ts := MovingAverages(benchLen, 10, 25)
	thr := Correlation(0.96)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := int64(i*37) % int64(db.Len())
		if _, _, err := db.RangeByID(id, ts, thr, QueryOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchThroughput runs the Fig. 5 workload through the batch
// executor at 1, 4 and GOMAXPROCS workers and reports queries/sec.
// Speedup beyond 1 worker needs real cores: on a single-CPU machine the
// numbers show scheduling overhead only.
func BenchmarkBatchThroughput(b *testing.B) {
	ss := datagen.RandomWalks(1999, 4000, benchLen)
	db := benchDB(b, ss, Options{PageSize: 1024})
	ts := MovingAverages(benchLen, 10, 25)
	thr := Correlation(0.96)
	reqs := make([]BatchRequest, 64)
	for i := range reqs {
		reqs[i] = BatchRequest{ID: int64(i * 61 % db.Len()), ByID: true, Transforms: ts, Threshold: thr}
	}
	counts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		counts = append(counts, p)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, res := range db.Batch(context.Background(), reqs, workers) {
					if res.Err != nil {
						b.Fatal(res.Err)
					}
				}
			}
			sec := b.Elapsed().Seconds()
			if sec > 0 {
				b.ReportMetric(float64(b.N*len(reqs))/sec, "queries/sec")
			}
		})
	}
}

// BenchmarkAblationBulkLoad compares a bulk-loaded (STR-packed) index
// against one grown by repeated insertion: same answers, fewer pages,
// fewer accesses.
func BenchmarkAblationBulkLoad(b *testing.B) {
	ss := datagen.StockMarket(1999, 1068, benchLen, datagen.DefaultMarketOptions())
	ts := MovingAverages(benchLen, 5, 20)
	thr := Correlation(0.96)
	for _, bulk := range []bool{false, true} {
		name := "grown"
		if bulk {
			name = "packed"
		}
		db := benchDB(b, ss, Options{PageSize: 1024, BulkLoad: bulk})
		b.Run("tree="+name, func(b *testing.B) {
			runRangeBench(b, db, ts, thr, QueryOptions{})
		})
	}
}

// BenchmarkAblationWorkers measures parallel verification: the sequential
// scan and MT verification sharded across goroutines.
func BenchmarkAblationWorkers(b *testing.B) {
	ss := datagen.RandomWalks(1999, 8000, benchLen)
	db := benchDB(b, ss, Options{PageSize: 1024})
	ts := MovingAverages(benchLen, 10, 25)
	thr := Correlation(0.96)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("seqscan-workers=%d", workers), func(b *testing.B) {
			runRangeBench(b, db, ts, thr, QueryOptions{Algorithm: SeqScan, Workers: workers})
		})
		b.Run(fmt.Sprintf("mt-workers=%d", workers), func(b *testing.B) {
			runRangeBench(b, db, ts, thr, QueryOptions{Workers: workers})
		})
	}
}
