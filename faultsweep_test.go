package tsq

// The fault-injection sweep: every query path must, for a fault injected
// at ANY point in its I/O trace, either return a wrapped error naming the
// failing page or produce exactly the fault-free answer — never a wrong
// answer, a panic, or a leaked goroutine. This is the executable form of
// the storage stack's error-propagation contract.

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"tsq/internal/core"
	"tsq/internal/datagen"
	"tsq/internal/storage"
)

// buildFaultedMemDB builds a paged in-memory database whose every page
// access flows through the returned FaultBackend.
func buildFaultedMemDB(t *testing.T, seed int64) (*DB, *storage.FaultBackend) {
	t.Helper()
	const ps = 2048
	fb := storage.NewFaultBackend(storage.NewMemBackend(ps), seed)
	mgr := storage.NewManager(storage.Options{PageSize: ps, Backend: fb})
	ss := datagen.RandomWalks(17, 60, 32)
	ds, err := core.NewDataset(ss, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.BuildIndex(ds, core.IndexOptions{
		K:           2,
		PageSize:    ps,
		UseSymmetry: true,
		Paged:       true,
		Manager:     mgr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &DB{ds: ds, ix: core.WrapIndex(ix)}, fb
}

// assertFaultOutcome checks the sweep invariant for one armed run: an
// error that names a page, or the exact baseline answer.
func assertFaultOutcome(t *testing.T, label string, op int64, err error, got, want any) {
	t.Helper()
	if err != nil {
		if !strings.Contains(err.Error(), "page") {
			t.Errorf("%s op %d: error does not name a page: %v", label, op, err)
		}
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s op %d: fault produced a WRONG ANSWER:\n got %v\nwant %v", label, op, got, want)
	}
}

// checkGoroutines waits for the goroutine count to settle back to the
// starting level (parallel query workers must never hang on a fault).
func checkGoroutines(t *testing.T, start int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > start+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > start+2 {
		t.Errorf("goroutine leak: %d running, started with %d", n, start)
	}
}

// sweepQuery runs query once fault-free to get the baseline and the op
// count, then re-runs it with a fault armed at every successive I/O op.
func sweepQuery(t *testing.T, label string, fb *storage.FaultBackend, query func() (any, error)) {
	t.Helper()
	fb.FailAt(0, storage.FaultNone)
	want, err := query()
	if err != nil {
		t.Fatalf("%s baseline: %v", label, err)
	}
	total := fb.Ops()
	if total == 0 {
		t.Fatalf("%s baseline performed no I/O; sweep is vacuous", label)
	}
	goroutines := runtime.NumGoroutine()
	for _, kind := range []storage.FaultKind{storage.FaultError, storage.FaultShortRead, storage.FaultCrash} {
		for op := int64(1); op <= total; op++ {
			fb.FailAt(op, kind)
			got, err := query()
			assertFaultOutcome(t, label, op, err, got, want)
		}
	}
	fb.FailAt(0, storage.FaultNone)
	checkGoroutines(t, goroutines)
}

func TestFaultSweepMemQueries(t *testing.T) {
	db, fb := buildFaultedMemDB(t, 11)
	ts := MovingAverages(32, 3, 8)
	thr := Correlation(0.9)
	q := db.Get(0)

	t.Run("range-serial", func(t *testing.T) {
		sweepQuery(t, "range-serial", fb, func() (any, error) {
			ms, _, err := db.Range(q, ts, thr, QueryOptions{})
			return ms, err
		})
	})
	t.Run("range-parallel", func(t *testing.T) {
		sweepQuery(t, "range-parallel", fb, func() (any, error) {
			ms, _, err := db.Range(q, ts, thr, QueryOptions{Workers: 4})
			return ms, err
		})
	})
	t.Run("nn", func(t *testing.T) {
		sweepQuery(t, "nn", fb, func() (any, error) {
			ms, _, err := db.NearestNeighbors(q, ts, 3, QueryOptions{})
			return ms, err
		})
	})
}

func TestFaultSweepDiskQueries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.tsq")
	ss := datagen.RandomWalks(19, 50, 32)
	db, err := CreateFile(path, ss, nil, Options{PageSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen with a FaultBackend at the "disk" position: beneath the
	// checksum layer, where real media faults happen.
	var fb *storage.FaultBackend
	re, err := openFile(path, func(b storage.Backend) storage.Backend {
		fb = storage.NewFaultBackend(b, 13)
		return fb
	}, openRW)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ts := MovingAverages(32, 3, 8)
	thr := Correlation(0.9)
	q := re.Get(0)
	t.Run("range-serial", func(t *testing.T) {
		sweepQuery(t, "disk-range-serial", fb, func() (any, error) {
			ms, _, err := re.Range(q, ts, thr, QueryOptions{})
			return ms, err
		})
	})
	t.Run("range-parallel", func(t *testing.T) {
		sweepQuery(t, "disk-range-parallel", fb, func() (any, error) {
			ms, _, err := re.Range(q, ts, thr, QueryOptions{Workers: 4})
			return ms, err
		})
	})
	t.Run("nn", func(t *testing.T) {
		sweepQuery(t, "disk-nn", fb, func() (any, error) {
			ms, _, err := re.NearestNeighbors(q, ts, 3, QueryOptions{})
			return ms, err
		})
	})
}

func TestFaultSweepSubsequence(t *testing.T) {
	seqs := datagen.RandomWalks(5, 6, 80)
	fb := storage.NewFaultBackend(storage.NewMemBackend(4096), 3)
	ix, err := NewSubsequenceIndex(seqs, SubseqOptions{Window: 16, Backend: fb})
	if err != nil {
		t.Fatal(err)
	}
	pattern := seqs[0][10:26]
	sweepQuery(t, "subseq", fb, func() (any, error) {
		ms, _, err := ix.Search(pattern, 0.5)
		return ms, err
	})
}

func TestFaultSweepCrashDuringCreate(t *testing.T) {
	// Crash the backend at every point of the create-time I/O trace and
	// verify the commit protocol: a crashed create must leave a file
	// that OpenFile rejects (or that opens fully intact), and CheckFile
	// must always produce a coherent report, never a panic.
	dir := t.TempDir()
	ss := datagen.RandomWalks(23, 30, 32)
	opts := Options{PageSize: 2048}

	// Count the create-time ops with a disarmed backend.
	var probe *storage.FaultBackend
	path := filepath.Join(dir, "baseline.tsq")
	db, err := createFile(path, ss, nil, opts, func(b storage.Backend) storage.Backend {
		probe = storage.NewFaultBackend(b, 1)
		return probe
	})
	if err != nil {
		t.Fatal(err)
	}
	total := probe.Ops()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("create performed no I/O; matrix is vacuous")
	}

	// Every early op, then a stride through the rest: each crash point
	// is a full index build, so the tail is sampled.
	var points []int64
	for op := int64(1); op <= total; op++ {
		if op <= 16 || op%7 == 0 || op == total {
			points = append(points, op)
		}
	}
	for _, op := range points {
		path := filepath.Join(dir, "crash.tsq")
		var fb *storage.FaultBackend
		db, err := createFile(path, ss, nil, opts, func(b storage.Backend) storage.Backend {
			fb = storage.NewFaultBackend(b, op)
			fb.FailAt(op, storage.FaultCrash)
			return fb
		})
		if err == nil {
			// The crash point was never reached (ops after the data
			// image is complete); the database must be fully usable.
			if verr := db.Verify(); verr != nil {
				t.Errorf("crash at op %d: create succeeded but Verify failed: %v", op, verr)
			}
			if cerr := db.Close(); cerr != nil {
				t.Errorf("crash at op %d: close: %v", op, cerr)
			}
		} else if !strings.Contains(err.Error(), "page") && !strings.Contains(err.Error(), "sync") {
			t.Errorf("crash at op %d: error names neither page nor sync: %v", op, err)
		}

		// The survived image must never open as a silently-wrong
		// database: either rejected, or complete and verifiable.
		if re, oerr := OpenFile(path); oerr == nil {
			if verr := re.Verify(); verr != nil {
				t.Errorf("crash at op %d: reopened a corrupt database: %v", op, verr)
			}
			_ = re.Close()
		}

		// And the scrubber always renders a verdict.
		r, cerr := CheckFile(path)
		if cerr != nil {
			t.Errorf("crash at op %d: CheckFile: %v", op, cerr)
			continue
		}
		if err != nil && r.OK() {
			t.Errorf("crash at op %d: create failed but scrub says OK:\n%s", op, r)
		}
		if err == nil && !r.OK() {
			t.Errorf("crash at op %d: create succeeded but scrub says corrupt:\n%s", op, r)
		}
		_ = r.String() // rendering must not panic either
	}
}

func TestFaultSweepCrashDuringShardedCreate(t *testing.T) {
	// The multi-shard commit protocol: shard files commit first, the
	// manifest last. Crash or tear a write at any point of any shard's
	// create-time I/O trace — what survives must never open as a
	// partially-visible database: OpenFile either reconstructs the full
	// DB or rejects the set, and the scrubber renders a verdict that
	// agrees with the create's outcome.
	dir := t.TempDir()
	ss := datagen.RandomWalks(27, 36, 32)
	opts := Options{PageSize: 2048, Shards: 3}

	// Baseline: one disarmed probe per shard file counts each shard's
	// create-time ops (wrap runs serially, once per shard, in order).
	var probes []*storage.FaultBackend
	base := filepath.Join(dir, "baseline.tsq")
	db, err := createFile(base, ss, nil, opts, func(b storage.Backend) storage.Backend {
		fb := storage.NewFaultBackend(b, int64(len(probes)+1))
		probes = append(probes, fb)
		return fb
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if len(probes) != opts.Shards {
		t.Fatalf("wrap ran %d times, want once per shard (%d)", len(probes), opts.Shards)
	}

	for _, kind := range []storage.FaultKind{storage.FaultCrash, storage.FaultTornWrite} {
		for s := 0; s < opts.Shards; s++ {
			total := probes[s].Ops()
			if total == 0 {
				t.Fatalf("shard %d performed no create I/O; sweep is vacuous", s)
			}
			var points []int64
			for op := int64(1); op <= total; op++ {
				if op <= 8 || op%11 == 0 || op == total {
					points = append(points, op)
				}
			}
			for _, op := range points {
				path := filepath.Join(dir, fmt.Sprintf("f%d_s%d_%d.tsq", kind, s, op))
				calls := 0
				db, err := createFile(path, ss, nil, opts, func(b storage.Backend) storage.Backend {
					fb := storage.NewFaultBackend(b, op)
					if calls == s {
						fb.FailAt(op, kind)
					}
					calls++
					return fb
				})
				label := fmt.Sprintf("kind %d shard %d op %d", kind, s, op)
				if err == nil {
					// The fault point was never reached; the database
					// must be fully usable.
					if verr := db.Verify(); verr != nil {
						t.Errorf("%s: create succeeded but Verify failed: %v", label, verr)
					}
					if cerr := db.Close(); cerr != nil {
						t.Errorf("%s: close: %v", label, cerr)
					}
				} else if !strings.Contains(err.Error(), "shard") {
					t.Errorf("%s: create error does not name the shard: %v", label, err)
				}

				// Whatever the create left on disk must never open as a
				// silently-wrong database. A failed multi-shard create
				// never wrote the manifest, so the usual rejection is
				// "no such file" at path — exactly the invisible-DB
				// guarantee.
				if re, oerr := OpenFile(path); oerr == nil {
					if verr := re.Verify(); verr != nil {
						t.Errorf("%s: reopened a corrupt database: %v", label, verr)
					}
					_ = re.Close()
				}

				// The scrubber agrees with the outcome whenever there is
				// a manifest to scrub.
				if _, serr := os.Stat(path); serr == nil {
					r, cerr := CheckFile(path)
					if cerr != nil {
						t.Errorf("%s: CheckFile: %v", label, cerr)
						continue
					}
					if err != nil && r.OK() {
						t.Errorf("%s: create failed but scrub says OK:\n%s", label, r)
					}
					if err == nil && !r.OK() {
						t.Errorf("%s: create succeeded but scrub says corrupt:\n%s", label, r)
					}
					_ = r.String()
				} else if err == nil {
					t.Errorf("%s: create succeeded but no manifest on disk", label)
				}
			}
		}
	}
}
