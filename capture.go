// Workload capture: the always-on query journal. EnableCapture installs
// a process-wide capture writer; every completed Range, NearestNeighbors
// and SubsequenceIndex query then appends one self-contained record —
// the full query specification, its key effort counters, and an answer
// digest — to a rotating, CRC-framed binary log that cmd/tsreplay can
// re-run deterministically against a database. Like every diagnostics
// feature, the disabled path costs one atomic pointer load and zero
// allocations (pinned by test).

package tsq

import (
	"sync/atomic"
	"time"

	"tsq/internal/core"
	"tsq/internal/obs/capture"
	"tsq/internal/storage"
)

// CaptureOptions configures the workload journal; zero values pick
// defaults (journal every query, 256 MiB segments, 2 rotated segments
// kept, 64 KiB write buffer).
type CaptureOptions = capture.Options

// CaptureStats reports what the capture writer did; its invariant
// (Seen == Written + SampledOut + Dropped) is audited by the support
// bundle.
type CaptureStats = capture.Stats

// captureWriter is the process-wide journal; nil means disabled. One
// atomic load on the query path decides.
var captureWriter atomic.Pointer[capture.Writer]

// EnableCapture opens (or appends to) the capture file at path and
// installs it as the process-wide workload journal. An existing
// journal is closed and replaced. The file's torn tail, if any, is
// truncated on open; see the capture package for the format.
func EnableCapture(path string, opts CaptureOptions) (*capture.Writer, error) {
	w, err := capture.NewWriter(path, opts)
	if err != nil {
		return nil, err
	}
	if old := captureWriter.Swap(w); old != nil {
		_ = old.Close()
	}
	return w, nil
}

// DisableCapture removes and closes the process-wide journal,
// returning the close (flush+sync) error, if any. The query path
// reverts to a single nil-pointer check.
func DisableCapture() error {
	return captureWriter.Swap(nil).Close()
}

// CaptureSnapshot returns the journal's counters; the zero stats when
// capture is disabled.
func CaptureSnapshot() CaptureStats { return captureWriter.Load().Stats() }

// captureQueryOpts flattens QueryOptions into the journal's
// representation.
func captureQueryOpts(opts QueryOptions) capture.OptionsRecord {
	rec := capture.OptionsRecord{
		Algorithm:        uint8(opts.Algorithm),
		TransformsPerMBR: int32(opts.TransformsPerMBR),
		Workers:          int32(opts.Workers),
		ClusterPartition: opts.ClusterPartition,
		UseOrdering:      opts.UseOrdering,
		PaperQueryRect:   opts.PaperQueryRect,
		OneSided:         opts.OneSided,
		NaiveVerify:      opts.NaiveVerify,
		FlatLB:           opts.FlatLB,
	}
	if opts.QueryTransform != nil {
		t := *opts.QueryTransform
		rec.QueryTransform = &t
	}
	return rec
}

// captureQueryStats books a completed query's effort counters into the
// journal's representation. Page counters are the process-global
// deltas observed around the query (shared with the query log's
// convention: exact when serial, inclusive of neighbors under
// concurrency).
func captureQueryStats(st Stats, dur time.Duration, matches int, ioPre, ioPost storage.Stats) capture.StatsRecord {
	return capture.StatsRecord{
		DurationNs:      dur.Nanoseconds(),
		Matches:         int64(matches),
		Candidates:      int64(st.Candidates),
		SkippedLB0:      int64(st.SkippedLB0),
		SkippedLB1:      int64(st.SkippedLB1),
		SkippedLB2:      int64(st.SkippedLB2),
		Abandoned:       int64(st.Abandoned),
		Comparisons:     int64(st.Comparisons),
		PagesRead:       ioPost.Reads - ioPre.Reads,
		PagesPrefetched: ioPost.Prefetched - ioPre.Prefetched,
		BufferHits:      ioPost.Hits - ioPre.Hits,
	}
}

// captureRange journals one completed range query. Lives behind the
// cw != nil check in rangeRecord, so a disabled journal costs nothing
// here. A stored query point (RangeByID) is journaled by reference
// plus content hash; an ad-hoc query carries its raw vector inline.
func captureRange(cw *capture.Writer, qid uint64, qr *core.Record, ts []Transform, eps float64,
	opts QueryOptions, m []Match, st Stats, dur time.Duration, qerr error, ioPre, ioPost storage.Stats) {
	if !cw.Admit() {
		return
	}
	rec := capture.Record{
		QueryID:   qid,
		Kind:      capture.KindRange,
		UnixNano:  time.Now().UnixNano(),
		SeriesID:  qr.ID,
		QueryHash: capture.HashFloats(qr.Raw),
		Eps:       eps,
		Opts:      captureQueryOpts(opts),
		Stats:     captureQueryStats(st, dur, len(m), ioPre, ioPost),
	}
	if qr.ID < 0 {
		rec.Query = qr.Raw
	}
	if qerr != nil {
		rec.Err = qerr.Error()
	} else {
		rec.Digest = core.AnswerDigestRange(m)
	}
	cw.Append(&rec, ts)
}

// captureNN journals one completed nearest-neighbor query. NN queries
// always take an ad-hoc query series, so the vector is always inline.
func captureNN(cw *capture.Writer, qid uint64, qr *core.Record, ts []Transform, k int,
	opts QueryOptions, m []NNMatch, st Stats, dur time.Duration, qerr error, ioPre, ioPost storage.Stats) {
	if !cw.Admit() {
		return
	}
	rec := capture.Record{
		QueryID:   qid,
		Kind:      capture.KindNN,
		UnixNano:  time.Now().UnixNano(),
		SeriesID:  qr.ID,
		QueryHash: capture.HashFloats(qr.Raw),
		K:         int32(k),
		Opts:      captureQueryOpts(opts),
		Stats:     captureQueryStats(st, dur, len(m), ioPre, ioPost),
	}
	if qr.ID < 0 {
		rec.Query = qr.Raw
	}
	if qerr != nil {
		rec.Err = qerr.Error()
	} else {
		rec.Digest = core.AnswerDigestNN(m)
	}
	cw.Append(&rec, ts)
}

// captureSubseq journals one completed subsequence search: the pattern
// inline, the window length (replay rebuilds the trail index from the
// database's series at that window), and a digest over the
// (sequence, offset, distance) occurrence set.
func captureSubseq(cw *capture.Writer, qid uint64, pattern Series, eps float64, window int,
	m []SubseqMatch, st SubseqStats, dur time.Duration, qerr error, ioPre, ioPost storage.Stats) {
	if !cw.Admit() {
		return
	}
	rec := capture.Record{
		QueryID:   qid,
		Kind:      capture.KindSubseq,
		UnixNano:  time.Now().UnixNano(),
		SeriesID:  -1,
		Query:     pattern,
		QueryHash: capture.HashFloats(pattern),
		Eps:       eps,
		Window:    int32(window),
		Stats: capture.StatsRecord{
			DurationNs:      dur.Nanoseconds(),
			Matches:         int64(len(m)),
			Candidates:      int64(st.Candidates),
			Abandoned:       int64(st.Abandoned),
			PagesRead:       ioPost.Reads - ioPre.Reads,
			PagesPrefetched: ioPost.Prefetched - ioPre.Prefetched,
			BufferHits:      ioPost.Hits - ioPre.Hits,
		},
	}
	if qerr != nil {
		rec.Err = qerr.Error()
	} else {
		rec.Digest = SubseqDigest(m)
	}
	cw.Append(&rec, nil)
}

// SubseqDigest digests a subsequence answer set: (sequence, offset,
// distance) per occurrence, order-insensitively — the subsequence form
// of the range/NN answer digest.
func SubseqDigest(ms []SubseqMatch) capture.Digest {
	var d capture.Digest
	for i := range ms {
		d.Add(int64(ms[i].Seq), int64(ms[i].Offset), ms[i].Distance)
	}
	return d
}
