package tsq

// Crash-consistency sweep for online writes. A serialized Insert/Delete
// workload runs with a fault armed at every sampled point of the page
// file's I/O trace; whatever the crash leaves on disk must reopen to
// exactly the never-crashed baseline after k operations, where k is the
// number of acknowledged ops — or k+1 when the op in flight had already
// reached the write-ahead log. No acknowledged write is ever lost, and
// query answers on the recovered database are bit-identical to the
// baseline's.

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"tsq/internal/datagen"
	"tsq/internal/storage"
	"tsq/internal/wal"
)

// copyDBFiles clones the database at src — page file, shard files, and
// their write-ahead logs — to dst, preserving suffixes. This is the
// crash simulation: the copy captures every write syscall that
// completed, and nothing the still-open writer had in memory.
func copyDBFiles(t *testing.T, src, dst string) {
	t.Helper()
	dir := filepath.Dir(src)
	base := filepath.Base(src)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), base) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dst+strings.TrimPrefix(e.Name(), base), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// dbState is the full logical state of a database: one entry per id
// ever assigned, nil series marking tombstones.
type dbState struct {
	Names  []string
	Series []Series
}

func snapshotState(db *DB) dbState {
	var st dbState
	for id := int64(0); id < int64(db.Len()); id++ {
		st.Names = append(st.Names, db.Name(id))
		st.Series = append(st.Series, db.Get(id))
	}
	return st
}

// sortedMatches returns the range answer in a canonical order so
// baseline and recovered answers compare with DeepEqual regardless of
// scatter-gather scheduling.
func sortedMatches(ms []Match) []Match {
	out := append([]Match(nil), ms...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].RecordID != out[j].RecordID {
			return out[i].RecordID < out[j].RecordID
		}
		return out[i].TransformIdx < out[j].TransformIdx
	})
	return out
}

// walWorkload is the serialized write workload the sweep crashes:
// inserts and deletes interleaved, touching both original and
// freshly-inserted ids. initial is the pristine database's record
// count.
func walWorkload(initial int64, extra []Series) []func(db *DB) error {
	return []func(db *DB) error{
		func(db *DB) error { _, err := db.Insert("wal-a", extra[0]); return err },
		func(db *DB) error { _, err := db.Insert("wal-b", extra[1]); return err },
		func(db *DB) error { return db.Delete(3) },
		func(db *DB) error { _, err := db.Insert("wal-c", extra[2]); return err },
		func(db *DB) error { return db.Delete(initial) }, // wal-a
		func(db *DB) error { _, err := db.Insert("wal-d", extra[3]); return err },
	}
}

// sweepWALWrites is the matrix body, shared by the single-file and
// sharded layouts.
func sweepWALWrites(t *testing.T, shardCount int, keep func(op, total int64) bool) {
	dir := t.TempDir()
	ss := datagen.RandomWalks(31, 30, 32)
	extra := datagen.RandomWalks(37, 4, 32)
	opts := Options{PageSize: 2048, Shards: shardCount}
	ts := MovingAverages(32, 3, 8)
	thr := Correlation(0.9)
	query := ss[0]

	pristine := filepath.Join(dir, "pristine.tsq")
	db, err := CreateFile(pristine, ss, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	ops := walWorkload(int64(len(ss)), extra)

	// Never-crashed baseline: state and range answer after every prefix.
	basePath := filepath.Join(dir, "baseline.tsq")
	copyDBFiles(t, pristine, basePath)
	base, err := OpenFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	answer := func(db *DB) ([]Match, error) {
		ms, _, err := db.Range(query, ts, thr, QueryOptions{})
		return sortedMatches(ms), err
	}
	snaps := []dbState{snapshotState(base)}
	ans, err := answer(base)
	if err != nil {
		t.Fatal(err)
	}
	answers := [][]Match{ans}
	for i, op := range ops {
		if err := op(base); err != nil {
			t.Fatalf("baseline op %d: %v", i, err)
		}
		snaps = append(snaps, snapshotState(base))
		if ans, err = answer(base); err != nil {
			t.Fatalf("baseline answer after op %d: %v", i, err)
		}
		answers = append(answers, ans)
	}
	if err := base.Close(); err != nil {
		t.Fatal(err)
	}

	// Probe run: count each page file's I/O ops across the workload.
	probePath := filepath.Join(dir, "probe.tsq")
	copyDBFiles(t, pristine, probePath)
	var probes []*storage.FaultBackend
	pdb, err := openFileAny(probePath, func(b storage.Backend) storage.Backend {
		fb := storage.NewFaultBackend(b, int64(len(probes)+1))
		probes = append(probes, fb)
		return fb
	}, openRW)
	if err != nil {
		t.Fatal(err)
	}
	for _, fb := range probes {
		fb.FailAt(0, storage.FaultNone) // count from the workload's first op
	}
	for i, op := range ops {
		if err := op(pdb); err != nil {
			t.Fatalf("probe op %d: %v", i, err)
		}
	}
	totals := make([]int64, len(probes))
	for i, fb := range probes {
		totals[i] = fb.Ops()
		if totals[i] == 0 && shardCount <= 1 {
			t.Fatal("workload performed no page I/O; sweep is vacuous")
		}
	}
	if err := pdb.Close(); err != nil {
		t.Fatal(err)
	}

	run := 0
	for _, kind := range []storage.FaultKind{storage.FaultCrash, storage.FaultTornWrite} {
		for target := range totals {
			for op := int64(1); op <= totals[target]; op++ {
				if !keep(op, totals[target]) {
					continue
				}
				run++
				label := fmt.Sprintf("kind %d file %d op %d", kind, target, op)
				work := filepath.Join(dir, fmt.Sprintf("w%d.tsq", run))
				copyDBFiles(t, pristine, work)

				var fbs []*storage.FaultBackend
				wdb, err := openFileAny(work, func(b storage.Backend) storage.Backend {
					fb := storage.NewFaultBackend(b, op)
					fbs = append(fbs, fb)
					return fb
				}, openRW)
				if err != nil {
					t.Fatalf("%s: open: %v", label, err)
				}
				fbs[target].FailAt(op, kind)

				// Apply until the fault bites; a crashed process never
				// issues the next op, so the workload stops at the first
				// error.
				acked := 0
				for _, wop := range ops {
					if err := wop(wdb); err != nil {
						break
					}
					acked++
				}

				// The crash: clone what is on disk, then let the dying
				// writer go (its Close may fail; the clone is the truth).
				crashed := filepath.Join(dir, fmt.Sprintf("c%d.tsq", run))
				copyDBFiles(t, work, crashed)
				_ = wdb.Close()

				re, err := OpenFile(crashed)
				if err != nil {
					t.Errorf("%s: acked %d: reopen after crash failed: %v", label, acked, err)
					continue
				}
				got := snapshotState(re)
				k := -1
				switch {
				case reflect.DeepEqual(got, snaps[acked]):
					k = acked
				case acked+1 < len(snaps) && reflect.DeepEqual(got, snaps[acked+1]):
					k = acked + 1 // the op in flight had reached the log
				}
				if k < 0 {
					t.Errorf("%s: recovered state matches no acked prefix (acked %d): lost or invented a write", label, acked)
					_ = re.Close()
					continue
				}
				if verr := re.Verify(); verr != nil {
					t.Errorf("%s: recovered database fails Verify: %v", label, verr)
				}
				if ans, aerr := answer(re); aerr != nil {
					t.Errorf("%s: range query on recovered database: %v", label, aerr)
				} else if !reflect.DeepEqual(ans, answers[k]) {
					t.Errorf("%s: recovered answers diverge from the never-crashed baseline at prefix %d", label, k)
				}
				if cerr := re.Close(); cerr != nil {
					t.Errorf("%s: close after recovery: %v", label, cerr)
				}
				// After the reopen folded the log, the scrubber must give
				// the file a clean bill.
				r, cerr := CheckFile(crashed)
				if cerr != nil {
					t.Errorf("%s: CheckFile: %v", label, cerr)
				} else if !r.OK() {
					t.Errorf("%s: scrub after recovery says corrupt:\n%s", label, r)
				}
			}
		}
	}
	if run == 0 {
		t.Fatal("sampling kept no fault points; sweep is vacuous")
	}
}

func TestWALSweepSingleFile(t *testing.T) {
	sweepWALWrites(t, 0, func(op, total int64) bool {
		return op <= 10 || op%13 == 0 || op == total
	})
}

func TestWALSweepSharded(t *testing.T) {
	sweepWALWrites(t, 2, func(op, total int64) bool {
		return op <= 5 || op%19 == 0 || op == total
	})
}

// TestWALHealsTornPage is the targeted healing path: insert without
// checkpointing, crash, corrupt one of the pages the pending log still
// covers, and verify that reopening replays the after-image over the
// damage — and that the scrubber counts the page healable beforehand.
func TestWALHealsTornPage(t *testing.T) {
	dir := t.TempDir()
	ss := datagen.RandomWalks(41, 24, 32)
	extra := datagen.RandomWalks(43, 3, 32)
	path := filepath.Join(dir, "heal.tsq")
	db, err := CreateFile(path, ss, nil, Options{PageSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range extra {
		if _, err := db.Insert(fmt.Sprintf("heal-%d", i), s); err != nil {
			t.Fatal(err)
		}
	}
	want := snapshotState(db)

	// Crash: clone the files with the log unfolded, abandon the writer.
	crashed := filepath.Join(dir, "crashed.tsq")
	copyDBFiles(t, path, crashed)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	pending, info, err := wal.ReadPending(crashed + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Present || len(pending) != len(extra) {
		t.Fatalf("expected %d pending records, got %d (present=%v)", len(extra), len(pending), info.Present)
	}
	// Tear the last page the log covers: garbage over its first bytes.
	images := pending[len(pending)-1].Pages
	victim := images[len(images)-1].ID
	f, err := os.OpenFile(crashed, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("torn write garbage"), int64(victim)*2048); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Scrub before recovery: the bad page must be reported healable,
	// and the file as a whole not corrupt.
	r, err := CheckFile(crashed)
	if err != nil {
		t.Fatal(err)
	}
	if r.BadPageCount == 0 || r.HealedPages != r.BadPageCount {
		t.Fatalf("scrub should count the torn page healable:\n%s", r)
	}
	if !r.OK() {
		t.Fatalf("a crash the log can heal must not scrub as corrupt:\n%s", r)
	}

	// Recovery: replay heals the page; nothing acknowledged is lost.
	re, err := OpenFile(crashed)
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	if got := snapshotState(re); !reflect.DeepEqual(got, want) {
		t.Error("recovered state differs from the pre-crash state")
	}
	if err := re.Verify(); err != nil {
		t.Errorf("recovered database fails Verify: %v", err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	r, err = CheckFile(crashed)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Fatalf("scrub after recovery:\n%s", r)
	}
}

// TestInsertCrashReopenScrub is the end-to-end recovery walk on both
// layouts: insert online, crash without closing, reopen, and scrub.
func TestInsertCrashReopenScrub(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shards int
	}{{"single-file", 0}, {"sharded", 3}} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			ss := datagen.RandomWalks(47, 27, 32)
			extra := datagen.RandomWalks(53, 5, 32)
			path := filepath.Join(dir, "e2e.tsq")
			db, err := CreateFile(path, ss, nil, Options{PageSize: 2048, Shards: tc.shards})
			if err != nil {
				t.Fatal(err)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db, err = OpenFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for i, s := range extra {
				if _, err := db.Insert(fmt.Sprintf("e2e-%d", i), s); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Delete(2); err != nil {
				t.Fatal(err)
			}
			want := snapshotState(db)
			crashed := filepath.Join(dir, "crashed.tsq")
			copyDBFiles(t, path, crashed)
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			re, err := OpenFile(crashed)
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			if got := snapshotState(re); !reflect.DeepEqual(got, want) {
				t.Error("recovered state differs from the pre-crash state")
			}
			if err := re.Verify(); err != nil {
				t.Errorf("recovered database fails Verify: %v", err)
			}
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
			r, err := CheckFile(crashed)
			if err != nil {
				t.Fatal(err)
			}
			if !r.OK() {
				t.Fatalf("scrub after recovery:\n%s", r)
			}
		})
	}
}

// TestConcurrentWritesRacingQueries drives Insert/Delete from writer
// goroutines while readers run range queries — the lock discipline
// (db.mu writers exclusive, queries shared) must hold under the race
// detector, and every answer a reader sees must be internally
// consistent (no panics, no errors).
func TestConcurrentWritesRacingQueries(t *testing.T) {
	dir := t.TempDir()
	ss := datagen.RandomWalks(59, 30, 32)
	path := filepath.Join(dir, "race.tsq")
	db, err := CreateFile(path, ss, nil, Options{PageSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ts := MovingAverages(32, 3, 8)
	thr := Correlation(0.9)
	query := ss[0]

	const writers, perWriter = 2, 12
	var wgW, wgR sync.WaitGroup
	errs := make(chan error, writers+2)
	done := make(chan struct{})
	for w := 0; w < writers; w++ {
		wgW.Add(1)
		go func(w int) {
			defer wgW.Done()
			rows := datagen.RandomWalks(int64(61+w), perWriter, 32)
			var mine []int64
			for i, s := range rows {
				id, err := db.Insert(fmt.Sprintf("race-%d-%d", w, i), s)
				if err != nil {
					errs <- fmt.Errorf("writer %d insert %d: %w", w, i, err)
					return
				}
				mine = append(mine, id)
				if i%3 == 2 { // delete every third of my own inserts
					if err := db.Delete(mine[len(mine)-2]); err != nil {
						errs <- fmt.Errorf("writer %d delete: %w", w, err)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wgR.Add(1)
		go func(r int) {
			defer wgR.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, _, err := db.Range(query, ts, thr, QueryOptions{Workers: 2}); err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
			}
		}(r)
	}
	wgW.Wait()
	close(done)
	wgR.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if err := db.Verify(); err != nil {
		t.Errorf("Verify after concurrent writes: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
